// Package qcache is a small sharded LRU cache for query results, keyed by
// opaque byte strings. Callers embed the serving snapshot's generation in the
// key, so a refresh invalidates every cached answer implicitly: the new
// generation's keys never collide with the old one's, and stale entries age
// out of the LRU instead of being swept. Safe for concurrent use; a nil
// *Cache is a valid always-miss cache, so "caching disabled" needs no branch
// at the call sites beyond skipping key construction.
package qcache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// shardCount spreads lock contention across independent LRUs. Power of two
// so the shard pick is a mask.
const shardCount = 16

// Cache is a bounded, sharded LRU from byte-string keys to arbitrary values.
type Cache struct {
	shards [shardCount]shard
	hits   atomic.Int64
	misses atomic.Int64
	evicts atomic.Int64
}

type shard struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	ll  *list.List // front = most recently used
}

type entry struct {
	key string
	val any
}

// New returns a cache holding up to capacity entries (rounded up to a
// multiple of the shard count); capacity <= 0 returns nil, the always-miss
// cache.
func New(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	c := &Cache{}
	per := (capacity + shardCount - 1) / shardCount
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].m = make(map[string]*list.Element, per)
		c.shards[i].ll = list.New()
	}
	return c
}

// hash is FNV-1a over the key; only shard selection depends on it.
//
//ccubing:hotpath
func hash(key []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// Get returns the cached value for key, marking it most recently used. The
// lookup does not retain or allocate from key.
//
//ccubing:hotpath
func (c *Cache) Get(key []byte) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := &c.shards[hash(key)&(shardCount-1)]
	s.mu.Lock()
	e, ok := s.m[string(key)] // compiler elides the string conversion
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.ll.MoveToFront(e)
	v := e.Value.(*entry).val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put inserts or refreshes key's value, evicting the shard's least recently
// used entry when over capacity.
func (c *Cache) Put(key []byte, val any) {
	if c == nil {
		return
	}
	s := &c.shards[hash(key)&(shardCount-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[string(key)]; ok {
		e.Value.(*entry).val = val
		s.ll.MoveToFront(e)
		return
	}
	ent := &entry{key: string(key), val: val}
	s.m[ent.key] = s.ll.PushFront(ent)
	if s.ll.Len() > s.cap {
		old := s.ll.Back()
		s.ll.Remove(old)
		delete(s.m, old.Value.(*entry).key)
		c.evicts.Add(1)
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Metrics reports cumulative hit and miss counts.
func (c *Cache) Metrics() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Evictions reports the cumulative number of entries pushed out by capacity
// (not entries aged out by generation turnover, which simply stop being
// requested and leave via this same LRU pressure later).
func (c *Cache) Evictions() int64 {
	if c == nil {
		return 0
	}
	return c.evicts.Load()
}
