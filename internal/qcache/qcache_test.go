package qcache

import "testing"

func key(s string) []byte { return []byte(s) }

func TestGetPut(t *testing.T) {
	c := New(64)
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key("a"), 1)
	v, ok := c.Get(key("a"))
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v; want 1, true", v, ok)
	}
	c.Put(key("a"), 2) // update in place
	if v, _ := c.Get(key("a")); v.(int) != 2 {
		t.Fatalf("Get(a) after update = %v; want 2", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	hits, misses := c.Metrics()
	if hits != 2 || misses != 1 {
		t.Fatalf("metrics = %d hits, %d misses; want 2, 1", hits, misses)
	}
}

func TestEviction(t *testing.T) {
	// Capacity 16 = one entry per shard; a second insert in any shard evicts
	// its LRU entry, so total occupancy never exceeds capacity.
	c := New(16)
	for i := 0; i < 256; i++ {
		c.Put([]byte{byte(i), byte(i >> 8)}, i)
	}
	if c.Len() > 16 {
		t.Fatalf("Len = %d after overfill, cap 16", c.Len())
	}
}

func TestLRUOrder(t *testing.T) {
	// Single-shard-sized keys: all keys hash to one shard by brute force.
	c := New(16) // per-shard cap 1... use 32 for cap 2 per shard
	c = New(32)
	var a, b, d []byte
	// Find three keys in the same shard.
	same := [][]byte{}
	for i := 0; i < 1024 && len(same) < 3; i++ {
		k := []byte{byte(i), byte(i >> 8), 7}
		if hash(k)&(shardCount-1) == 0 {
			same = append(same, k)
		}
	}
	if len(same) < 3 {
		t.Skip("no three single-shard keys found")
	}
	a, b, d = same[0], same[1], same[2]
	c.Put(a, "a")
	c.Put(b, "b")
	c.Get(a)      // a is now most recent; b is LRU
	c.Put(d, "d") // evicts b
	if _, ok := c.Get(b); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(a); !ok {
		t.Fatal("recently used entry was evicted")
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache
	if c := New(0); c != nil {
		t.Fatal("New(0) should return the nil always-miss cache")
	}
	if _, ok := c.Get(key("x")); ok {
		t.Fatal("nil cache hit")
	}
	c.Put(key("x"), 1) // must not panic
	if c.Len() != 0 {
		t.Fatal("nil cache has entries")
	}
	if h, m := c.Metrics(); h != 0 || m != 0 {
		t.Fatalf("nil cache metrics = %d, %d", h, m)
	}
}

func TestGetDoesNotAllocate(t *testing.T) {
	c := New(64)
	k := key("steady-state")
	c.Put(k, 42)
	n := testing.AllocsPerRun(100, func() {
		if _, ok := c.Get(k); !ok {
			t.Fatal("lost entry")
		}
	})
	if n > 0 {
		t.Fatalf("Get allocates %v per op; want 0", n)
	}
}
