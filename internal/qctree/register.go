package qctree

import (
	"ccubing/internal/engine"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// qctreeEngine adapts this package to the engine registry. QC-Tree is QC-DFS
// plus QC-tree materialization, closed mode only.
type qctreeEngine struct{}

func (qctreeEngine) Name() string { return "QC-Tree" }

func (qctreeEngine) Capabilities() engine.Capabilities {
	return engine.Capabilities{Closed: true}
}

func (qctreeEngine) Run(t *table.Table, cfg engine.Config, out sink.Sink) error {
	return Run(t, cfg.MinSup, out)
}

func init() { engine.Register(qctreeEngine{}) }
