package qctree

// Build-cost comparison between the two queryable materializations of a
// closed cube, with the QC-tree measured in isolation: FromCells now
// constructs a cubestore index alongside the node structure, so timing it
// would fold a full store build into the "QC-tree" number. treeOnly
// reproduces the bare structure the original Quotient Cube system built.

import (
	"fmt"
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/cubestore"
	"ccubing/internal/gen"
	"ccubing/internal/qcdfs"
	"ccubing/internal/sink"
)

// treeOnly inserts cells without the cubestore side-index (sb nil).
func treeOnly(nd int, cells []core.Cell) *Tree {
	t := &Tree{root: &node{dim: -1}, nd: nd}
	for _, c := range cells {
		t.insert(c.Values, c.Count)
	}
	return t
}

// BenchmarkBuildComparison times, from the same closed cell set: the bare
// QC-tree (the paper baseline's structure), the cubestore (the serving
// index), and FromCells (tree + index, what Tree.Query needs today).
func BenchmarkBuildComparison(b *testing.B) {
	tbl := gen.MustSynthetic(gen.Config{T: 30000, D: 6, C: 20, S: 1.1, Seed: 13})
	for _, minsup := range []int64{32, 8} {
		col := &sink.Collector{}
		if err := qcdfs.Run(tbl, qcdfs.Config{MinSup: minsup}, col); err != nil {
			b.Fatal(err)
		}
		cells := col.Cells
		b.Run(fmt.Sprintf("qctree-only/cells=%d", len(cells)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if tr := treeOnly(tbl.NumDims(), cells); tr.Nodes() == 0 {
					b.Fatal("empty tree")
				}
			}
		})
		b.Run(fmt.Sprintf("cubestore-only/cells=%d", len(cells)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sb := cubestore.NewBuilder(tbl.NumDims(), false)
				for _, c := range cells {
					sb.Add(c.Values, c.Count, 0)
				}
				if _, err := sb.Build(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("qctree-with-index/cells=%d", len(cells)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := FromCells(tbl.NumDims(), cells); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
