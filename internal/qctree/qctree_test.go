package qctree

import (
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/gen"
	"ccubing/internal/refcube"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

func paperTable(t *testing.T) *table.Table {
	t.Helper()
	tb, err := table.FromRows([][]core.Value{
		{0, 0, 0, 0},
		{0, 0, 0, 2},
		{0, 1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestBuildAndQueryPaperTable(t *testing.T) {
	tb := paperTable(t)
	tree, err := Build(tb, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Nodes() == 0 {
		t.Fatal("empty tree")
	}
	// Query closed cells.
	if c, ok := tree.Query([]core.Value{0, 0, 0, core.Star}); !ok || c != 2 {
		t.Fatalf("(a1,b1,c1,*) = %d,%v", c, ok)
	}
	// Query a NON-closed cell: (a1,*,c1,*) belongs to the class of
	// (a1,b1,c1,*) and must answer 2.
	if c, ok := tree.Query([]core.Value{0, core.Star, 0, core.Star}); !ok || c != 2 {
		t.Fatalf("(a1,*,c1,*) = %d,%v", c, ok)
	}
	// The apex answers the total.
	if c, ok := tree.Query([]core.Value{core.Star, core.Star, core.Star, core.Star}); !ok || c != 3 {
		t.Fatalf("apex = %d,%v", c, ok)
	}
	// An empty cell answers false.
	if _, ok := tree.Query([]core.Value{0, 0, 1, core.Star}); ok {
		t.Fatal("empty cell must answer false")
	}
}

// TestQueryAnswersWholeIcebergCube is the lossless-compression property: the
// QC-tree must answer the exact count for EVERY iceberg cell, closed or not.
func TestQueryAnswersWholeIcebergCube(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 150, D: 4, C: 4, S: 1, Seed: 5})
	for _, minsup := range []int64{1, 3} {
		tree, err := Build(tb, minsup)
		if err != nil {
			t.Fatal(err)
		}
		ice, err := refcube.Iceberg(tb, minsup)
		if err != nil {
			t.Fatal(err)
		}
		for _, cell := range ice {
			got, ok := tree.Query(cell.Values)
			if !ok || got != cell.Count {
				t.Fatalf("min_sup %d: query %v = %d,%v want %d",
					minsup, cell, got, ok, cell.Count)
			}
		}
	}
}

func TestTreeSmallerThanClosedCells(t *testing.T) {
	// Prefix sharing must make node count at most the total of bound values
	// over closed cells.
	tb := gen.MustSynthetic(gen.Config{T: 200, D: 4, C: 5, S: 1, Seed: 6})
	tree, err := Build(tb, 1)
	if err != nil {
		t.Fatal(err)
	}
	closed, err := refcube.Closed(tb, 1)
	if err != nil {
		t.Fatal(err)
	}
	var bound int64
	for _, c := range closed {
		bound += int64(c.Dims())
	}
	if tree.Nodes() > bound {
		t.Fatalf("nodes %d exceeds total bound values %d", tree.Nodes(), bound)
	}
	if tree.NumDims() != 4 {
		t.Fatalf("dims = %d", tree.NumDims())
	}
}

func TestRunForwardsCells(t *testing.T) {
	tb := paperTable(t)
	var c sink.Collector
	if err := Run(tb, 2, &c); err != nil {
		t.Fatal(err)
	}
	if len(c.Cells) != 2 {
		t.Fatalf("forwarded %d cells, want 2", len(c.Cells))
	}
}

func TestBuildErrors(t *testing.T) {
	tb := paperTable(t)
	if _, err := Build(tb, 0); err == nil {
		t.Fatal("min_sup 0 must error")
	}
}
