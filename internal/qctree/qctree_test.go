package qctree

import (
	"testing"
	"time"

	"ccubing/internal/core"
	"ccubing/internal/gen"
	"ccubing/internal/refcube"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

func paperTable(t *testing.T) *table.Table {
	t.Helper()
	tb, err := table.FromRows([][]core.Value{
		{0, 0, 0, 0},
		{0, 0, 0, 2},
		{0, 1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestBuildAndQueryPaperTable(t *testing.T) {
	tb := paperTable(t)
	tree, err := Build(tb, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Nodes() == 0 {
		t.Fatal("empty tree")
	}
	// Query closed cells.
	if c, ok := tree.Query([]core.Value{0, 0, 0, core.Star}); !ok || c != 2 {
		t.Fatalf("(a1,b1,c1,*) = %d,%v", c, ok)
	}
	// Query a NON-closed cell: (a1,*,c1,*) belongs to the class of
	// (a1,b1,c1,*) and must answer 2.
	if c, ok := tree.Query([]core.Value{0, core.Star, 0, core.Star}); !ok || c != 2 {
		t.Fatalf("(a1,*,c1,*) = %d,%v", c, ok)
	}
	// The apex answers the total.
	if c, ok := tree.Query([]core.Value{core.Star, core.Star, core.Star, core.Star}); !ok || c != 3 {
		t.Fatalf("apex = %d,%v", c, ok)
	}
	// An empty cell answers false.
	if _, ok := tree.Query([]core.Value{0, 0, 1, core.Star}); ok {
		t.Fatal("empty cell must answer false")
	}
}

// TestQueryAnswersWholeIcebergCube is the lossless-compression property: the
// QC-tree must answer the exact count for EVERY iceberg cell, closed or not.
func TestQueryAnswersWholeIcebergCube(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 150, D: 4, C: 4, S: 1, Seed: 5})
	for _, minsup := range []int64{1, 3} {
		tree, err := Build(tb, minsup)
		if err != nil {
			t.Fatal(err)
		}
		ice, err := refcube.Iceberg(tb, minsup)
		if err != nil {
			t.Fatal(err)
		}
		for _, cell := range ice {
			got, ok := tree.Query(cell.Values)
			if !ok || got != cell.Count {
				t.Fatalf("min_sup %d: query %v = %d,%v want %d",
					minsup, cell, got, ok, cell.Count)
			}
		}
	}
}

func TestTreeSmallerThanClosedCells(t *testing.T) {
	// Prefix sharing must make node count at most the total of bound values
	// over closed cells.
	tb := gen.MustSynthetic(gen.Config{T: 200, D: 4, C: 5, S: 1, Seed: 6})
	tree, err := Build(tb, 1)
	if err != nil {
		t.Fatal(err)
	}
	closed, err := refcube.Closed(tb, 1)
	if err != nil {
		t.Fatal(err)
	}
	var bound int64
	for _, c := range closed {
		bound += int64(c.Dims())
	}
	if tree.Nodes() > bound {
		t.Fatalf("nodes %d exceeds total bound values %d", tree.Nodes(), bound)
	}
	if tree.NumDims() != 4 {
		t.Fatalf("dims = %d", tree.NumDims())
	}
}

func TestRunForwardsCells(t *testing.T) {
	tb := paperTable(t)
	var c sink.Collector
	if err := Run(tb, 2, &c); err != nil {
		t.Fatal(err)
	}
	if len(c.Cells) != 2 {
		t.Fatalf("forwarded %d cells, want 2", len(c.Cells))
	}
}

func TestBuildErrors(t *testing.T) {
	tb := paperTable(t)
	if _, err := Build(tb, 0); err == nil {
		t.Fatal("min_sup 0 must error")
	}
}

// TestQueryMatchesWalk cross-checks the cubestore-backed Query against the
// original drill-down walk on a dataset small enough for the walk.
func TestQueryMatchesWalk(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 300, D: 5, C: 4, S: 1.2, Seed: 9})
	tree, err := Build(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]core.Value, tb.NumDims())
	var sweep func(d int)
	sweep = func(d int) {
		if d == len(vals) {
			wc, wok := tree.walkQuery(vals)
			gc, gok := tree.Query(vals)
			if wok != gok || wc != gc {
				t.Fatalf("query %v: probe (%d,%v), walk (%d,%v)", vals, gc, gok, wc, wok)
			}
			return
		}
		for v := core.Value(-1); v < core.Value(tb.Cards[d]); v++ {
			if v == -1 {
				vals[d] = core.Star
			} else {
				vals[d] = v
			}
			sweep(d + 1)
		}
	}
	sweep(0)
}

// TestQueryPathologicalShape is the drill-down regression test: the full
// cross product over D binary dimensions makes EVERY cell closed, so the
// tree holds 3^D nodes and the historical walk visits essentially all of
// them whenever a query leaves leading dimensions free (a 1-bound-dimension
// query explored ~3^D nodes; at D=12 that is >500k node visits per query).
// The cubestore-backed Query resolves each probe with binary searches; the
// whole battery must finish in interactive time and return exact counts,
// which have the closed form 2^(D - bound dims) here.
func TestQueryPathologicalShape(t *testing.T) {
	const D = 12
	// Materialize all 3^D closed cells directly (count = 2^free) instead of
	// running an engine over the 2^D-tuple relation.
	var cells []core.Cell
	vals := make([]core.Value, D)
	var emit func(d, free int)
	emit = func(d, free int) {
		if d == D {
			v := make([]core.Value, D)
			copy(v, vals)
			cells = append(cells, core.Cell{Values: v, Count: 1 << uint(free)})
			return
		}
		vals[d] = core.Star
		emit(d+1, free+1)
		for v := core.Value(0); v < 2; v++ {
			vals[d] = v
			emit(d+1, free)
		}
	}
	emit(0, 0)
	tree, err := FromCells(D, cells)
	if err != nil {
		t.Fatal(err)
	}
	// Every nonempty bound-pair path is a node (the apex lives at the root):
	// 3^D - 1 of them.
	if want := int64(len(cells)) - 1; tree.Nodes() != want {
		t.Fatalf("tree has %d nodes, want %d", tree.Nodes(), want)
	}

	start := time.Now()
	queries := 0
	q := make([]core.Value, D)
	for last := 0; last < D; last++ {
		for v := core.Value(0); v < 2; v++ {
			for i := range q {
				q[i] = core.Star
			}
			q[last] = v // one bound dimension: worst case for the walk
			got, ok := tree.Query(q)
			if !ok || got != 1<<uint(D-1) {
				t.Fatalf("query bound dim %d: (%d,%v), want (%d,true)", last, got, ok, 1<<uint(D-1))
			}
			queries++
			// A couple of bound dimensions, still leaving leading ones free.
			if last >= 2 {
				q[last/2] = v
				got, ok = tree.Query(q)
				if !ok || got != 1<<uint(D-2) {
					t.Fatalf("two-dim query: (%d,%v), want (%d,true)", got, ok, 1<<uint(D-2))
				}
				queries++
			}
		}
	}
	// Generous bound: the old walk needed hundreds of millions of node
	// visits for this battery; the probe needs a few thousand comparisons.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("%d pathological queries took %s; drill-down blowup is back", queries, elapsed)
	}
}
