// Package qctree implements the QC-tree of Lakshmanan, Pei & Zhao
// (SIGMOD'03): the summary structure the Quotient Cube system materializes.
// The paper's baseline measurements used the QC-tree authors' implementation
// (Sec. 5: "the QC-DFS was provided by the author of [10]"), which builds
// this structure rather than merely listing closed cells — the cost the
// C-Cubing algorithms avoid. This package provides both the structure (with
// point-query support, demonstrating the lossless-compression semantics) and
// a builder that can be timed against the cubing engines.
//
// A QC-tree stores every temporary class of the quotient cube: each closed
// (upper-bound) cell contributes the prefix paths of its class, and each
// tree node is annotated with the class measure. Point queries for ANY cell
// (closed or not) walk the tree following the queried values, taking
// documented "drill-down jumps" when a dimension is absent — returning the
// measure of the cell's class, which equals the cell's own measure because
// the quotient partition is measure-preserving.
package qctree

import (
	"fmt"
	"sort"

	"ccubing/internal/core"
	"ccubing/internal/cubestore"
	"ccubing/internal/qcdfs"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// node is one QC-tree node: a (dimension, value) labeled edge from its
// parent, annotated with the count of the class whose path ends here.
type node struct {
	dim   int
	val   core.Value
	count int64
	sons  []*node // sorted by (dim, val)
}

// Tree is a materialized QC-tree. Alongside the node structure (whose size
// is the baseline's cost metric) it materializes a cubestore index over the
// same closed cells: point queries probe the index with binary searches
// instead of the historical drill-down recursion, whose worst case visits
// every node of a tree that grows exponentially with dimensionality.
type Tree struct {
	root  *node
	nd    int
	nodes int64
	sb    *cubestore.Builder
	store *cubestore.Store
}

func newTree(nd int) *Tree {
	return &Tree{root: &node{dim: -1}, nd: nd, sb: cubestore.NewBuilder(nd, false)}
}

// finalize freezes the query index once every class is inserted.
func (t *Tree) finalize() error {
	store, err := t.sb.Build()
	if err != nil {
		return fmt.Errorf("qctree: %w", err)
	}
	t.store, t.sb = store, nil
	return nil
}

// Nodes returns the number of tree nodes, the structure-size metric.
func (t *Tree) Nodes() int64 { return t.nodes }

// NumDims returns the dimensionality of the underlying relation.
func (t *Tree) NumDims() int { return t.nd }

// Build computes the closed iceberg cube of tbl with QC-DFS and inserts
// every class into a QC-tree, mirroring what the original Quotient Cube
// system constructs. minsup of 1 gives the full quotient cube of the paper's
// Figs. 3-7 baseline.
func Build(tbl *table.Table, minsup int64) (*Tree, error) {
	t := newTree(tbl.NumDims())
	ins := &inserter{t: t}
	if err := qcdfs.Run(tbl, qcdfs.Config{MinSup: minsup}, ins); err != nil {
		return nil, fmt.Errorf("qctree: %w", err)
	}
	if err := t.finalize(); err != nil {
		return nil, err
	}
	return t, nil
}

// FromCells builds a QC-tree directly from an already-computed set of closed
// cells (from any engine), turning a closed cube into a queryable summary.
// nd is the relation's dimensionality.
func FromCells(nd int, cells []core.Cell) (*Tree, error) {
	t := newTree(nd)
	for _, c := range cells {
		if len(c.Values) != nd {
			return nil, fmt.Errorf("qctree: cell has %d dimensions, want %d", len(c.Values), nd)
		}
		t.insert(c.Values, c.Count)
	}
	if err := t.finalize(); err != nil {
		return nil, err
	}
	return t, nil
}

// Run computes the closed iceberg cube via QC-DFS while also materializing
// the QC-tree — the full work the original Quotient Cube system performs —
// forwarding every upper-bound cell to out. This is the baseline variant
// labeled "QC-Tree" in the experiment harness.
func Run(tbl *table.Table, minsup int64, out sink.Sink) error {
	// No query index here: Run exists to time exactly the work the original
	// Quotient Cube system performs (QC-DFS + tree insertion), so the tree
	// is built without the cubestore side-index Build/FromCells add.
	t := &Tree{root: &node{dim: -1}, nd: tbl.NumDims()}
	ins := &inserter{t: t, next: out}
	if err := qcdfs.Run(tbl, qcdfs.Config{MinSup: minsup}, ins); err != nil {
		return fmt.Errorf("qctree: %w", err)
	}
	return nil
}

// inserter adapts the sink interface to tree insertion.
type inserter struct {
	t    *Tree
	next sink.Sink
}

// Emit inserts one upper-bound cell. Per the QC-tree construction, the
// node path of a class is the sequence of its bound (dim, value) pairs in
// dimension order; shared prefixes are shared in the tree.
func (ins *inserter) Emit(vals []core.Value, count int64) {
	ins.t.insert(vals, count)
	if ins.next != nil {
		ins.next.Emit(vals, count)
	}
}

func (t *Tree) insert(vals []core.Value, count int64) {
	if t.sb != nil {
		t.sb.Add(vals, count, 0)
	}
	cur := t.root
	if cur.count < count {
		cur.count = count // the root class is the apex upper bound's class
	}
	for d, v := range vals {
		if v == core.Star {
			continue
		}
		cur = cur.findOrAdd(d, v, &t.nodes)
		if cur.count < count {
			cur.count = count
		}
	}
	// Ensure the terminal node carries the exact class count.
	cur.count = count
}

func (n *node) findOrAdd(dim int, val core.Value, nodes *int64) *node {
	i := sort.Search(len(n.sons), func(i int) bool {
		s := n.sons[i]
		return s.dim > dim || (s.dim == dim && s.val >= val)
	})
	if i < len(n.sons) && n.sons[i].dim == dim && n.sons[i].val == val {
		return n.sons[i]
	}
	s := &node{dim: dim, val: val}
	n.sons = append(n.sons, nil)
	copy(n.sons[i+1:], n.sons[i:])
	n.sons[i] = s
	*nodes++
	return s
}

// Query returns the count of an arbitrary cell (Star marks wildcards), or
// false if the cell is empty or below the iceberg threshold the tree was
// built with.
//
// The cell's class is the one whose upper bound is the cell's closure: the
// covering stored cell with the largest count (a covering upper bound binds
// a superset of the query pairs, so its count is at most the cell's, with
// equality exactly for the closure). Queries resolve through the cubestore
// probe — binary searches over the covering cuboids — rather than the
// historical drill-down walk (kept as walkQuery for reference), whose worst
// case visits every node of an exponentially sized tree when the query
// leaves dimensions free.
func (t *Tree) Query(vals []core.Value) (int64, bool) {
	if t.store != nil {
		return t.store.Query(vals)
	}
	return t.walkQuery(vals)
}

// walkQuery is the original QC-tree drill-down recursion: follow bound
// values in dimension order, descend through drill-down edges on dimensions
// the query leaves free, and maximize over complete matches. Exponentially
// slow on adversarial tree shapes; retained as the semantic reference the
// probe is tested against (and as the fallback for index-less trees).
func (t *Tree) walkQuery(vals []core.Value) (int64, bool) {
	bound := make([]core.Value, 0, t.nd)
	dims := make([]int, 0, t.nd)
	for d, v := range vals {
		if v != core.Star {
			dims = append(dims, d)
			bound = append(bound, v)
		}
	}
	count, ok := t.query(t.root, dims, bound)
	return count, ok
}

func (t *Tree) query(n *node, dims []int, vals []core.Value) (int64, bool) {
	if len(dims) == 0 {
		return n.count, true
	}
	best := int64(-1)
	d, v := dims[0], vals[0]
	// Exact edge.
	i := sort.Search(len(n.sons), func(i int) bool {
		s := n.sons[i]
		return s.dim > d || (s.dim == d && s.val >= v)
	})
	if i < len(n.sons) && n.sons[i].dim == d && n.sons[i].val == v {
		if c, ok := t.query(n.sons[i], dims[1:], vals[1:]); ok && c > best {
			best = c
		}
	}
	// Drill-down edges: dimensions before d bound by the class but free in
	// the query.
	for _, s := range n.sons {
		if s.dim >= d {
			break
		}
		if c, ok := t.query(s, dims, vals); ok && c > best {
			best = c
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}
