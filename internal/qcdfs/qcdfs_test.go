package qcdfs

import (
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/gen"
	"ccubing/internal/refcube"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

func run(t *testing.T, tb *table.Table, minsup int64) *sink.Collector {
	t.Helper()
	var c sink.Collector
	d := &sink.Dedup{Next: &c}
	if err := Run(tb, Config{MinSup: minsup}, d); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d.Dup != 0 {
		t.Fatalf("QC-DFS emitted %d duplicate cells", d.Dup)
	}
	return &c
}

func paperTable(t *testing.T) *table.Table {
	t.Helper()
	tb, err := table.FromRows([][]core.Value{
		{0, 0, 0, 0},
		{0, 0, 0, 2},
		{0, 1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestPaperExample1 checks the exact closed iceberg cube of Table 1 at
// min_sup 2: {(a1,b1,c1,*):2, (a1,*,*,*):3}.
func TestPaperExample1(t *testing.T) {
	got := run(t, paperTable(t), 2)
	if len(got.Cells) != 2 {
		t.Fatalf("cells = %s", sink.FormatCells(got.Cells))
	}
	m, _ := got.ByKey()
	if m[core.CellKey([]core.Value{0, 0, 0, core.Star})] != 2 {
		t.Fatalf("missing (a1,b1,c1,*):2 in %s", sink.FormatCells(got.Cells))
	}
	if m[core.CellKey([]core.Value{0, core.Star, core.Star, core.Star})] != 3 {
		t.Fatalf("missing (a1,*,*,*):3 in %s", sink.FormatCells(got.Cells))
	}
}

func TestFullClosedCubeOfPaperTable(t *testing.T) {
	want, err := refcube.Closed(paperTable(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	got := run(t, paperTable(t), 1)
	if diff := sink.DiffCells(got.Cells, want, 10); diff != "" {
		t.Fatalf("mismatch:\n%s", diff)
	}
}

// TestMatchesOracleRandomized is the central soundness test: QC-DFS must
// produce exactly the definitional closed iceberg cube across dataset shapes.
func TestMatchesOracleRandomized(t *testing.T) {
	cases := []struct {
		cfg    gen.Config
		minsup int64
	}{
		{gen.Config{T: 150, D: 4, C: 3, S: 0, Seed: 1}, 1},
		{gen.Config{T: 150, D: 4, C: 3, S: 0, Seed: 2}, 4},
		{gen.Config{T: 200, D: 3, C: 8, S: 2, Seed: 3}, 2},
		{gen.Config{T: 100, D: 5, C: 2, S: 1, Seed: 4}, 3},
		{gen.Config{T: 300, D: 2, C: 20, S: 0.5, Seed: 5}, 5},
		{gen.Config{T: 120, D: 6, C: 2, S: 0, Seed: 6}, 2},
		{gen.Config{T: 80, D: 4, C: 10, S: 3, Seed: 7}, 1},
	}
	for i, c := range cases {
		tb := gen.MustSynthetic(c.cfg)
		want, err := refcube.Closed(tb, c.minsup)
		if err != nil {
			t.Fatal(err)
		}
		got := run(t, tb, c.minsup)
		if diff := sink.DiffCells(got.Cells, want, 8); diff != "" {
			t.Fatalf("case %d mismatch:\n%s", i, diff)
		}
	}
}

// TestHighDependence exercises the closure-extension path heavily: with
// planted functional rules most partitions have shared free dimensions.
func TestHighDependence(t *testing.T) {
	cards := []int{5, 5, 5, 5, 5}
	rules := gen.RulesForDependence(2.5, cards, 23)
	tb := gen.MustSynthetic(gen.Config{T: 250, Cards: cards, S: 0.5, Seed: 24, Rules: rules})
	for _, m := range []int64{1, 4, 16} {
		want, err := refcube.Closed(tb, m)
		if err != nil {
			t.Fatal(err)
		}
		got := run(t, tb, m)
		if diff := sink.DiffCells(got.Cells, want, 8); diff != "" {
			t.Fatalf("min_sup %d mismatch:\n%s", m, diff)
		}
	}
}

// TestOutputsAreUpperBounds: every emitted cell must be its own closure — on
// each wildcard dimension its tuples must NOT share one value.
func TestOutputsAreUpperBounds(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 120, D: 4, C: 3, S: 1, Seed: 30})
	got := run(t, tb, 2)
	for _, cell := range got.Cells {
		for d := range cell.Values {
			if cell.Values[d] != core.Star {
				continue
			}
			var shared core.Value = -9
			same := true
			for tid := 0; tid < tb.NumTuples() && same; tid++ {
				match := true
				for dd, v := range cell.Values {
					if v != core.Star && tb.Cols[dd][tid] != v {
						match = false
						break
					}
				}
				if !match {
					continue
				}
				if shared == -9 {
					shared = tb.Cols[d][tid]
				} else if tb.Cols[d][tid] != shared {
					same = false
				}
			}
			if same {
				t.Fatalf("cell %v is not an upper bound on dim %d", cell, d)
			}
		}
	}
}

func TestErrors(t *testing.T) {
	tb := paperTable(t)
	var c sink.Collector
	if err := Run(tb, Config{MinSup: 0}, &c); err == nil {
		t.Fatal("min_sup 0 must error")
	}
	if err := Run(tb, Config{MinSup: 1, Measure: core.MeasureSum}, &c); err == nil {
		t.Fatal("measure without aux must error")
	}
}

func TestAuxMeasure(t *testing.T) {
	tb := paperTable(t)
	tb.Aux = []float64{2, 4, 8}
	var c sink.AuxCollector
	if err := Run(tb, Config{MinSup: 2, Measure: core.MeasureSum}, &c); err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, cell := range c.Cells {
		byKey[cell.Key()] = cell.Aux
	}
	if byKey[core.CellKey([]core.Value{0, 0, 0, core.Star})] != 6 {
		t.Fatalf("sum of (a1,b1,c1,*) = %v, want 6", byKey)
	}
	if byKey[core.CellKey([]core.Value{0, core.Star, core.Star, core.Star})] != 14 {
		t.Fatalf("sum of (a1,*,*,*) = %v, want 14", byKey)
	}
}

func TestEmptyResultAboveT(t *testing.T) {
	got := run(t, paperTable(t), 4)
	if len(got.Cells) != 0 {
		t.Fatalf("cells above T: %s", sink.FormatCells(got.Cells))
	}
}
