// Package qcdfs implements QC-DFS, the Quotient Cube depth-first closed-cube
// algorithm of Lakshmanan, Pei & Han (VLDB'02), derived from BUC: the
// raw-data-based checking baseline every experiment in the paper compares
// against (Sec. 2.2.1).
//
// For each partition reached by BUC-style expansion, the algorithm SCANS the
// dimensions outside the current group-by: if every tuple of the partition
// shares one value on such a dimension, the cell is extended by that value
// (computing the upper bound / closure of its class); if the shared
// dimension lies before the current expansion position, the closure was
// already produced by an earlier branch and the whole partition is pruned
// ("jump" pruning). The per-partition scanning is exactly the overhead the
// paper's aggregation-based checking eliminates.
package qcdfs

import (
	"fmt"

	"ccubing/internal/core"
	"ccubing/internal/psort"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// Config parameterizes a QC-DFS run.
type Config struct {
	// MinSup is the iceberg threshold on count. The original QC-DFS computes
	// the full closed cube (MinSup 1); the threshold generalizes it to closed
	// iceberg cubes for comparison at equal semantics.
	MinSup int64
	// Measure optionally aggregates the table's Aux column per closed cell
	// into stored aggregates (delivered through sink.AuxSink; avg arrives as
	// its algebraic pair (stored sum, count)).
	Measure core.MeasureKind
}

type runner struct {
	t      *table.Table
	cfg    Config
	out    sink.Sink
	auxOut sink.AuxSink
	parts  []psort.Partitioner
	tids   []core.TID
	vals   []core.Value
	ext    []int // scratch: dimensions fixed by closure extension
}

// Run computes the closed iceberg cube of t, emitting every closed cell with
// count >= MinSup exactly once.
func Run(t *table.Table, cfg Config, out sink.Sink) error {
	if cfg.MinSup < 1 {
		return fmt.Errorf("qcdfs: min_sup %d < 1", cfg.MinSup)
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("qcdfs: %w", err)
	}
	if cfg.Measure != core.MeasureNone && t.Aux == nil {
		return fmt.Errorf("qcdfs: measure %v requested but table has no aux column", cfg.Measure)
	}
	n := t.NumTuples()
	if int64(n) < cfg.MinSup || n == 0 {
		return nil
	}
	r := &runner{
		t:     t,
		cfg:   cfg,
		out:   out,
		parts: make([]psort.Partitioner, t.NumDims()),
		tids:  make([]core.TID, n),
		vals:  make([]core.Value, t.NumDims()),
	}
	if a, ok := out.(sink.AuxSink); ok && cfg.Measure != core.MeasureNone {
		r.auxOut = a
	}
	for i := range r.tids {
		r.tids[i] = core.TID(i)
	}
	for d := range r.vals {
		r.vals[d] = core.Star
	}
	r.recurse(0, n, 0)
	return nil
}

// recurse processes the partition [lo,hi) whose fixed values are in r.vals,
// with expansion allowed on dimensions >= dim.
func (r *runner) recurse(lo, hi, dim int) {
	// Closure scan: extend the cell on every free dimension whose value is
	// shared by all tuples of the partition; jump-prune if such a dimension
	// precedes the expansion position (that closed cell was or will be
	// produced when that dimension itself is expanded).
	extStart := len(r.ext)
	defer func() {
		for _, d := range r.ext[extStart:] {
			r.vals[d] = core.Star
		}
		r.ext = r.ext[:extStart]
	}()
	nd := r.t.NumDims()
	part := r.tids[lo:hi]
	for d := 0; d < nd; d++ {
		if r.vals[d] != core.Star {
			continue
		}
		col := r.t.Cols[d]
		shared := col[part[0]]
		allShare := true
		for _, tid := range part[1:] {
			if col[tid] != shared {
				allShare = false
				break // scanning stops at the first discrepancy
			}
		}
		if !allShare {
			continue
		}
		if d < dim {
			return // jump pruning: covered by an earlier expansion
		}
		r.vals[d] = shared
		r.ext = append(r.ext, d)
	}

	r.emit(lo, hi)

	for d := dim; d < nd; d++ {
		if r.vals[d] != core.Star {
			continue // fixed by closure extension: expanding would duplicate
		}
		b := r.parts[d].Partition(part, r.t.Cols[d], r.t.Cards[d])
		for i, v := range b.Vals {
			blo, bhi := lo+b.Off[i], lo+b.Off[i+1]
			if int64(bhi-blo) < r.cfg.MinSup {
				continue
			}
			r.vals[d] = v
			r.recurse(blo, bhi, d+1)
			r.vals[d] = core.Star
		}
	}
}

func (r *runner) emit(lo, hi int) {
	count := int64(hi - lo)
	if r.auxOut != nil {
		agg := core.NewMeasureAgg(r.cfg.Measure)
		for _, tid := range r.tids[lo:hi] {
			agg.Add(r.t.Aux[tid])
		}
		r.auxOut.EmitAux(r.vals, count, agg.Stored())
		return
	}
	r.out.Emit(r.vals, count)
}
