package qcdfs

import (
	"ccubing/internal/engine"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// qcdfsEngine adapts this package to the engine registry. QC-DFS computes
// closed (quotient) cubes only; it aggregates complex measures natively.
type qcdfsEngine struct{}

func (qcdfsEngine) Name() string { return "QC-DFS" }

func (qcdfsEngine) Capabilities() engine.Capabilities {
	return engine.Capabilities{Closed: true, NativeMeasure: true}
}

func (qcdfsEngine) Run(t *table.Table, cfg engine.Config, out sink.Sink) error {
	return Run(t, Config{MinSup: cfg.MinSup, Measure: cfg.Measure}, out)
}

func init() { engine.Register(qcdfsEngine{}) }
