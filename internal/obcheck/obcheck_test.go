package obcheck

import (
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/gen"
	"ccubing/internal/refcube"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

func run(t *testing.T, tb *table.Table, minsup int64) *sink.Collector {
	t.Helper()
	var c sink.Collector
	d := &sink.Dedup{Next: &c}
	if err := Run(tb, Config{MinSup: minsup}, d); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d.Dup != 0 {
		t.Fatalf("OB-BUC emitted %d duplicate cells", d.Dup)
	}
	return &c
}

func TestMatchesOracleRandomized(t *testing.T) {
	cases := []struct {
		cfg    gen.Config
		minsup int64
	}{
		{gen.Config{T: 150, D: 4, C: 3, S: 0, Seed: 1}, 1},
		{gen.Config{T: 150, D: 4, C: 3, S: 0, Seed: 2}, 4},
		{gen.Config{T: 200, D: 3, C: 8, S: 2, Seed: 3}, 2},
		{gen.Config{T: 100, D: 5, C: 2, S: 1, Seed: 4}, 3},
		{gen.Config{T: 120, D: 6, C: 2, S: 0, Seed: 6}, 2},
		{gen.Config{T: 80, D: 4, C: 10, S: 3, Seed: 7}, 1},
	}
	for i, c := range cases {
		tb := gen.MustSynthetic(c.cfg)
		want, err := refcube.Closed(tb, c.minsup)
		if err != nil {
			t.Fatal(err)
		}
		got := run(t, tb, c.minsup)
		if diff := sink.DiffCells(got.Cells, want, 8); diff != "" {
			t.Fatalf("case %d mismatch:\n%s", i, diff)
		}
	}
}

func TestPaperExample1(t *testing.T) {
	tb, err := table.FromRows([][]core.Value{
		{0, 0, 0, 0},
		{0, 0, 0, 2},
		{0, 1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := run(t, tb, 2)
	m, _ := got.ByKey()
	if len(m) != 2 ||
		m[core.CellKey([]core.Value{0, 0, 0, core.Star})] != 2 ||
		m[core.CellKey([]core.Value{0, core.Star, core.Star, core.Star})] != 3 {
		t.Fatalf("cells:\n%s", sink.FormatCells(got.Cells))
	}
}

// TestIndexGrowsWithOutput verifies the cost profile the paper criticizes:
// the index retains every closed cell.
func TestIndexGrowsWithOutput(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 200, D: 4, C: 4, S: 1, Seed: 9})
	var c sink.Collector
	st, err := RunStats(tb, Config{MinSup: 1}, &c)
	if err != nil {
		t.Fatal(err)
	}
	if st.IndexedCells != int64(len(c.Cells)) {
		t.Fatalf("indexed %d cells, emitted %d", st.IndexedCells, len(c.Cells))
	}
	if st.IndexProbes == 0 {
		t.Fatal("expected subsumption probes")
	}
}

func TestErrors(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 10, D: 2, C: 2, Seed: 1})
	var c sink.Collector
	if err := Run(tb, Config{MinSup: 0}, &c); err == nil {
		t.Fatal("min_sup 0 must error")
	}
	if got := run(t, tb, 11); len(got.Cells) != 0 {
		t.Fatal("min_sup above T must produce nothing")
	}
}
