package obcheck

import (
	"ccubing/internal/engine"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// obbucEngine adapts this package to the engine registry. OB-BUC is BUC
// enumeration with output-based closedness checking, closed mode only.
type obbucEngine struct{}

func (obbucEngine) Name() string { return "OB-BUC" }

func (obbucEngine) Capabilities() engine.Capabilities {
	return engine.Capabilities{Closed: true}
}

func (obbucEngine) Run(t *table.Table, cfg engine.Config, out sink.Sink) error {
	return Run(t, Config{MinSup: cfg.MinSup}, out)
}

func init() { engine.Register(obbucEngine{}) }
