// Package obcheck implements output-based closedness checking, the approach
// of closed frequent-pattern miners (CLOSET+, CHARM) that paper Sec. 2.2.2
// describes and argues against for cubes: already-found closed cells are
// kept in an in-memory index, and every new candidate is checked for
// subsumption against it.
//
// The engine is a BUC-order depth-first enumeration. For a candidate cell
// two checks decide closedness:
//
//   - forward: if any free dimension at or after the expansion position has
//     one shared value across the partition, a deeper cell with equal count
//     covers the candidate (a raw-data scan over the partition tail);
//   - backward: a cover extending the candidate only on earlier dimensions
//     was, by BUC's dimension-increasing DFS order, already output — the
//     candidate is probed against the index of previous outputs with equal
//     count.
//
// The index grows with the output — the paper's core criticism: "the output
// of cubing can be very large, and maintaining the index structure would
// become the major bottleneck". This package exists to make that trade-off
// measurable against aggregation-based checking.
package obcheck

import (
	"fmt"

	"ccubing/internal/core"
	"ccubing/internal/psort"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// Config parameterizes a run.
type Config struct {
	// MinSup is the iceberg threshold on count.
	MinSup int64
}

// indexKey is the two-level probe key of CLOSET+-style subsumption indices:
// a stored cover of a candidate must share the candidate's count and bind
// the candidate's last fixed (dimension, value) pair (covers extending on
// later dimensions are excluded by the forward check). Every stored cell is
// indexed under each of its bound pairs, multiplying the index footprint —
// the memory cost the paper criticizes.
type indexKey struct {
	count int64
	dim   int32
	val   core.Value
}

type runner struct {
	t     *table.Table
	cfg   Config
	out   sink.Sink
	parts []psort.Partitioner
	tids  []core.TID
	vals  []core.Value
	// index maps probe keys to previously-output closed cells (packed
	// value vectors).
	index map[indexKey][]string
	// IndexedCells counts stored cells; IndexProbes counts cover tests;
	// IndexEntries counts key postings (the memory driver).
	IndexedCells int64
	IndexProbes  int64
	IndexEntries int64
}

// Run computes the closed iceberg cube of t with output-based checking,
// emitting every closed cell with count >= MinSup exactly once. It returns
// the index statistics through RunStats.
func Run(t *table.Table, cfg Config, out sink.Sink) error {
	_, err := RunStats(t, cfg, out)
	return err
}

// Stats reports the cost drivers of output-based checking.
type Stats struct {
	IndexedCells int64 // closed cells held in memory at the end
	IndexProbes  int64 // subsumption tests performed
	IndexEntries int64 // index postings (cells × bound dimensions)
}

// RunStats is Run, also returning index statistics.
func RunStats(t *table.Table, cfg Config, out sink.Sink) (Stats, error) {
	if cfg.MinSup < 1 {
		return Stats{}, fmt.Errorf("obcheck: min_sup %d < 1", cfg.MinSup)
	}
	if err := t.Validate(); err != nil {
		return Stats{}, fmt.Errorf("obcheck: %w", err)
	}
	n := t.NumTuples()
	if int64(n) < cfg.MinSup {
		return Stats{}, nil
	}
	r := &runner{
		t:     t,
		cfg:   cfg,
		out:   out,
		parts: make([]psort.Partitioner, t.NumDims()),
		tids:  make([]core.TID, n),
		vals:  make([]core.Value, t.NumDims()),
		index: make(map[indexKey][]string),
	}
	for i := range r.tids {
		r.tids[i] = core.TID(i)
	}
	for d := range r.vals {
		r.vals[d] = core.Star
	}
	r.recurse(0, n, 0)
	return Stats{
		IndexedCells: r.IndexedCells,
		IndexProbes:  r.IndexProbes,
		IndexEntries: r.IndexEntries,
	}, nil
}

func (r *runner) recurse(lo, hi, dim int) {
	r.check(lo, hi, dim)
	nd := r.t.NumDims()
	for d := dim; d < nd; d++ {
		b := r.parts[d].Partition(r.tids[lo:hi], r.t.Cols[d], r.t.Cards[d])
		bVals := append([]core.Value(nil), b.Vals...)
		bOff := append([]int(nil), b.Off...)
		for i, v := range bVals {
			blo, bhi := lo+bOff[i], lo+bOff[i+1]
			if int64(bhi-blo) < r.cfg.MinSup {
				continue
			}
			r.vals[d] = v
			r.recurse(blo, bhi, d+1)
			r.vals[d] = core.Star
		}
	}
}

// check decides the candidate's closedness and emits/indexes it if closed.
func (r *runner) check(lo, hi, dim int) {
	part := r.tids[lo:hi]
	nd := r.t.NumDims()
	// Forward check: a shared value on a free dimension at/after the
	// expansion position means a deeper cover exists.
	for d := dim; d < nd; d++ {
		if r.vals[d] != core.Star {
			continue
		}
		col := r.t.Cols[d]
		shared := col[part[0]]
		all := true
		for _, tid := range part[1:] {
			if col[tid] != shared {
				all = false
				break
			}
		}
		if all {
			return
		}
	}
	// Backward check: probe the output index for a stored cover with equal
	// count. Covers extending the candidate on later dimensions were already
	// excluded by the forward check, so a relevant cover binds every fixed
	// pair of the candidate — in particular the last one, the probe key.
	count := int64(len(part))
	key := core.CellKey(r.vals)
	last := -1
	for d := nd - 1; d >= 0; d-- {
		if r.vals[d] != core.Star {
			last = d
			break
		}
	}
	if last >= 0 {
		k := indexKey{count: count, dim: int32(last), val: r.vals[last]}
		for _, stored := range r.index[k] {
			r.IndexProbes++
			if covers(stored, key, nd) {
				return
			}
		}
	}
	r.out.Emit(r.vals, count)
	for d := 0; d < nd; d++ {
		if r.vals[d] != core.Star {
			k := indexKey{count: count, dim: int32(d), val: r.vals[d]}
			r.index[k] = append(r.index[k], key)
			r.IndexEntries++
		}
	}
	r.IndexedCells++
}

// covers reports whether the stored packed cell covers the candidate packed
// cell: every fixed (non-Star) value of the candidate matches.
func covers(stored, cand string, nd int) bool {
	for d := 0; d < nd; d++ {
		o := 4 * d
		// Candidate Star (0xffffffff little-endian) imposes no constraint.
		if cand[o] == 0xff && cand[o+1] == 0xff && cand[o+2] == 0xff && cand[o+3] == 0xff {
			continue
		}
		if stored[o] != cand[o] || stored[o+1] != cand[o+1] ||
			stored[o+2] != cand[o+2] || stored[o+3] != cand[o+3] {
			return false
		}
	}
	return true
}
