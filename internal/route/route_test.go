package route

import (
	"fmt"
	"testing"
)

// TestOwnerStable pins the FNV-1a mapping: these values are a wire contract
// between routers and shard workers — changing them strands deployed data.
func TestOwnerStable(t *testing.T) {
	for _, tc := range []struct {
		component string
		n, want   int
	}{
		{"", 4, 1}, // FNV-1a offset basis 2166136261 mod 4
		{"oslo", 2, 0},
		{"oslo", 4, 2},
		{"paris", 4, 0},
		{"0", 3, 0},
		{"17", 5, 3},
	} {
		if got := Owner(tc.component, tc.n); got != tc.want {
			t.Errorf("Owner(%q, %d) = %d, want %d", tc.component, tc.n, got, tc.want)
		}
	}
}

// TestOwnerRange checks every owner lands in [0, n) and the distribution
// touches every shard for a modest component universe.
func TestOwnerRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		seen := make([]bool, n)
		for i := 0; i < 1000; i++ {
			o := Owner(fmt.Sprintf("c%d", i), n)
			if o < 0 || o >= n {
				t.Fatalf("Owner out of range: %d for n=%d", o, n)
			}
			seen[o] = true
		}
		for o, ok := range seen {
			if !ok {
				t.Errorf("n=%d: shard %d never chosen", n, o)
			}
		}
	}
}

// BenchmarkOwner guards the hotpath annotation: routing must not allocate.
func BenchmarkOwner(b *testing.B) {
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += Owner("some-component-label", 8)
	}
	_ = sink
}
