// Package route assigns leading-dimension components to shard owners.
//
// The assignment is the serving-layer face of the paper's Sec. 6.3
// partitioning argument: tuples sharded on one dimension cube independently,
// and any cell fixing that dimension aggregates tuples of exactly one
// partition. Hashing a component string to an owner therefore routes point
// lookups, slices and deltas that bind the routing dimension to the single
// shard holding every matching tuple.
//
// Both the router (picking the shard to forward to) and a shard worker
// (filtering its slice of the source relation) must agree on the mapping, so
// it lives here, depends on nothing, and must never change for a deployed
// topology: rehashing moves tuples between shards.
package route

// offset32 and prime32 are the FNV-1a 32-bit parameters.
const (
	offset32 = 2166136261
	prime32  = 16777619
)

// Owner maps a routing-dimension component to its owning shard in [0, n).
// The component is the dimension's string form: the label on labeled cubes,
// the decimal value on coded cubes. n must be positive.
//
// The hash is FNV-1a inlined to keep the routing fast path allocation-free
// (hash/fnv forces the component through an io.Writer's []byte).
//
//ccubing:hotpath
func Owner(component string, n int) int {
	h := uint32(offset32)
	for i := 0; i < len(component); i++ {
		h ^= uint32(component[i])
		h *= prime32
	}
	return int(h % uint32(n))
}
