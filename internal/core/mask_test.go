package core

import (
	"testing"
	"testing/quick"
)

func TestBit(t *testing.T) {
	for d := 0; d < MaxDims; d++ {
		m := Bit(d)
		if !m.Has(d) {
			t.Fatalf("Bit(%d) does not have bit %d", d, d)
		}
		if m.OnesCount() != 1 {
			t.Fatalf("Bit(%d) has %d bits set", d, m.OnesCount())
		}
	}
}

func TestLowBits(t *testing.T) {
	cases := []struct {
		n    int
		want Mask
	}{
		{0, 0},
		{1, 1},
		{3, 0b111},
		{8, 0xff},
		{MaxDims, ^Mask(0)},
	}
	for _, c := range cases {
		if got := LowBits(c.n); got != c.want {
			t.Errorf("LowBits(%d) = %x, want %x", c.n, got, c.want)
		}
	}
}

func TestLowBitsPanics(t *testing.T) {
	for _, n := range []int{-1, MaxDims + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LowBits(%d) did not panic", n)
				}
			}()
			LowBits(n)
		}()
	}
}

func TestWithWithout(t *testing.T) {
	var m Mask
	m = m.With(3).With(5)
	if !m.Has(3) || !m.Has(5) || m.Has(4) {
		t.Fatalf("With: got %b", m)
	}
	m = m.Without(3)
	if m.Has(3) || !m.Has(5) {
		t.Fatalf("Without: got %b", m)
	}
	// Without on an absent bit is a no-op.
	if m.Without(3) != m {
		t.Fatal("Without absent bit changed mask")
	}
}

func TestDims(t *testing.T) {
	m := Bit(0) | Bit(7) | Bit(63)
	got := m.Dims(nil)
	want := []int{0, 7, 63}
	if len(got) != len(want) {
		t.Fatalf("Dims = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Dims = %v, want %v", got, want)
		}
	}
	if (Mask(0)).Dims(nil) != nil {
		t.Fatal("Dims of zero mask should append nothing")
	}
}

func TestDimsAppends(t *testing.T) {
	dst := []int{99}
	got := (Bit(2)).Dims(dst)
	if len(got) != 2 || got[0] != 99 || got[1] != 2 {
		t.Fatalf("Dims append = %v", got)
	}
}

func TestMaskStringDims(t *testing.T) {
	m := Bit(0) | Bit(2)
	if s := m.StringDims(4); s != "(1,0,1,0)" {
		t.Fatalf("StringDims = %q", s)
	}
}

func TestAllMask(t *testing.T) {
	vals := []Value{Star, 3, Star, 0}
	m := AllMask(vals)
	if m != Bit(0)|Bit(2) {
		t.Fatalf("AllMask = %v", m.StringDims(4))
	}
	if AllMask([]Value{1, 2}) != 0 {
		t.Fatal("AllMask of fully-fixed cell should be 0")
	}
	if AllMask(nil) != 0 {
		t.Fatal("AllMask(nil) should be 0")
	}
}

func TestAllMaskPaperExample3(t *testing.T) {
	// Paper Example 3: the All Mask of (*, *, 2, *, 1) is (1,1,0,1,0); with
	// closed mask (1,0,1,0,0) the closedness measure is (1,0,0,0,0).
	vals := []Value{Star, Star, 2, Star, 1}
	all := AllMask(vals)
	if all.StringDims(5) != "(1,1,0,1,0)" {
		t.Fatalf("all mask = %v", all.StringDims(5))
	}
	closed := Mask(0).With(0).With(2)
	if got := closed & all; got.StringDims(5) != "(1,0,0,0,0)" {
		t.Fatalf("closedness measure = %v", got.StringDims(5))
	}
	// Bit 0 is set in the closedness measure => the cell is not closed.
	if (Closedness{Rep: 0, Mask: closed}).Closed(all) {
		t.Fatal("cell of Example 3 must not be closed")
	}
}

func TestOnesCountMatchesDims(t *testing.T) {
	f := func(m Mask) bool { return m.OnesCount() == len(m.Dims(nil)) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
