package core

import (
	"encoding/binary"
	"sort"
	"strconv"
	"strings"
)

// Cell is a k-dimensional group-by cell (paper Def. 1): Values holds one
// entry per dimension of the base relation, Star marking aggregated-over
// dimensions, and Count is the count measure. Aux optionally carries the
// value of a complex measure (paper Sec. 6.1).
type Cell struct {
	Values []Value
	Count  int64
	Aux    float64
}

// Dims returns the number of non-Star dimensions, i.e. the k of the
// k-dimensional cuboid the cell belongs to.
func (c Cell) Dims() int {
	n := 0
	for _, v := range c.Values {
		if v != Star {
			n++
		}
	}
	return n
}

// Key packs the cell's values into a compact string usable as a map key.
// Cells from the same relation have equal keys iff they are the same cell.
func (c Cell) Key() string { return CellKey(c.Values) }

// CellKey packs a value vector into a map key. Star positions participate so
// that cells from different cuboids never collide.
func CellKey(vals []Value) string {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return string(b)
}

// AppendValue appends one value's 4-byte key encoding to b, for callers
// packing partial (per-cuboid) keys incrementally; the layout matches
// CellKey's little-endian encoding.
func AppendValue(b []byte, v Value) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// ValueWidth is the number of bytes one value occupies in the packed-key
// encoding of CellKey/AppendValue.
const ValueWidth = 4

// AppendValues appends the packed-key encoding of vals at the given
// dimensions to dst, in the order dims lists them: the per-cuboid partial-key
// form of CellKey shared by the serving store and its aggregate engine.
func AppendValues(dst []byte, vals []Value, dims []int) []byte {
	for _, d := range dims {
		dst = AppendValue(dst, vals[d])
	}
	return dst
}

// DecodeValue reads the value encoded at the start of b, inverting
// AppendValue. It panics when b holds fewer than ValueWidth bytes.
func DecodeValue(b []byte) Value {
	return Value(binary.LittleEndian.Uint32(b))
}

// String renders the cell in the paper's notation, e.g. (a1, *, c3 : 17)
// using dimension index + value index names.
func (c Cell) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for d, v := range c.Values {
		if d > 0 {
			b.WriteString(", ")
		}
		if v == Star {
			b.WriteByte('*')
		} else {
			b.WriteByte(byte('a' + d%26))
			b.WriteString(strconv.Itoa(int(v)))
		}
	}
	b.WriteString(" : ")
	b.WriteString(strconv.FormatInt(c.Count, 10))
	b.WriteByte(')')
	return b.String()
}

// Covers reports whether V(sub) <= V(c) in the paper's Def. 3 ordering: every
// non-Star value of sub matches c. (Equality of value vectors also reports
// true; callers needing strict refinement compare Dims too.)
func (c Cell) Covers(sub Cell) bool {
	for d, v := range sub.Values {
		if v != Star && c.Values[d] != v {
			return false
		}
	}
	return true
}

// SortCells orders cells canonically: by number of fixed dimensions, then
// lexicographically by values. Used to compare algorithm outputs in tests.
func SortCells(cells []Cell) {
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		for d := range a.Values {
			if a.Values[d] != b.Values[d] {
				return a.Values[d] < b.Values[d]
			}
		}
		return false
	})
}
