package core

import "math/bits"

// Closedness is the aggregation-based closedness measure of a cell: the pair
// of a Representative Tuple ID (distributive, paper Lemma 2) and a Closed
// Mask (algebraic, paper Lemma 3). It is aggregated exactly like count and
// tested at output time against the cell's All Mask.
//
// The zero value is NOT an empty measure; use EmptyClosedness (or
// SingletonClosedness for a one-tuple cell) to initialize.
type Closedness struct {
	// Rep is the representative tuple: the smallest TID aggregated into the
	// cell, or NilTID for an empty cell. The paper notes any member tuple
	// works; the minimum is used to ease reasoning and keep runs
	// deterministic.
	Rep TID

	// Mask is the Closed Mask: bit d set iff every tuple of the cell shares
	// one value on dimension d. In tree-based engines the mask may be
	// partial: bits of not-yet-collapsed deeper dimensions are kept 0 and
	// are completed lazily at output levels (paper Sec. 4.3).
	Mask Mask
}

// EmptyClosedness returns the measure of an empty cell. An empty cell
// vacuously shares every value, so its mask is all ones and merging it is an
// identity operation.
func EmptyClosedness() Closedness {
	return Closedness{Rep: NilTID, Mask: ^Mask(0)}
}

// SingletonClosedness returns the measure of a cell holding exactly tuple t.
// A single tuple trivially shares all of its own values.
func SingletonClosedness(t TID) Closedness {
	return Closedness{Rep: t, Mask: ^Mask(0)}
}

// Columns provides dictionary-encoded access to the base relation's values,
// column-major: cols[d][t] is the value of tuple t on dimension d. It is the
// lookup needed by the Closed Mask combine rule to compare representative
// tuples.
type Columns [][]Value

// Merge combines the closedness measure of another part of the cell into c
// (paper Lemma 3 generalized by the tree rule of Sec. 4.3):
//
//	C(S,d) = Π C(Si,d)                      if checkMask bit d is 0
//	C(S,d) = Π C(Si,d) × Eq(|{V(T(Si),d)}|) if checkMask bit d is 1
//
// checkMask selects the dimensions whose sharing must be re-validated by
// comparing representative-tuple values: in flat engines (MultiWay/MM) it is
// all ones; in tree engines it is the Tree Mask, plus the dimensions of star
// nodes on the path (star nodes merge distinct values, so their structural
// bits cannot be trusted without a value check).
//
// Bits outside checkMask are combined by plain AND, preserving the partial-
// mask semantics of tree nodes.
func (c *Closedness) Merge(other Closedness, checkMask Mask, cols Columns) {
	if other.Rep == NilTID {
		return
	}
	if c.Rep == NilTID {
		*c = other
		return
	}
	m := c.Mask & other.Mask
	for pend := m & checkMask & LowBits(len(cols)); pend != 0; pend &= pend - 1 {
		d := trailingZeros(pend)
		if cols[d][c.Rep] != cols[d][other.Rep] {
			m = m.Without(d)
		}
	}
	c.Mask = m
	if other.Rep < c.Rep {
		c.Rep = other.Rep
	}
}

// MergeTuple folds a single tuple into the measure, equivalent to
// Merge(SingletonClosedness(t), checkMask, cols) but cheaper.
func (c *Closedness) MergeTuple(t TID, checkMask Mask, cols Columns) {
	if c.Rep == NilTID {
		c.Rep = t
		c.Mask = ^Mask(0)
		return
	}
	m := c.Mask
	for pend := m & checkMask & LowBits(len(cols)); pend != 0; pend &= pend - 1 {
		d := trailingZeros(pend)
		if cols[d][c.Rep] != cols[d][t] {
			m = m.Without(d)
		}
	}
	c.Mask = m
	if t < c.Rep {
		c.Rep = t
	}
}

// Closed reports whether a cell with this measure and the given All Mask is
// closed (paper Def. 9): the cell is closed iff no wildcard dimension has all
// tuples sharing a single value.
func (c Closedness) Closed(allMask Mask) bool {
	return c.Mask&allMask == 0
}

// ExactClosedness computes the full closedness measure of the cell containing
// exactly the given tuples, by scanning. It is the reference ("from raw
// data") computation used by pool leaves in StarArray and by tests.
func ExactClosedness(tids []TID, cols Columns) Closedness {
	if len(tids) == 0 {
		return EmptyClosedness()
	}
	rep := tids[0]
	for _, t := range tids[1:] {
		if t < rep {
			rep = t
		}
	}
	m := ^Mask(0)
	for d := range cols {
		v := cols[d][tids[0]]
		for _, t := range tids[1:] {
			if cols[d][t] != v {
				m = m.Without(d)
				break
			}
		}
	}
	return Closedness{Rep: rep, Mask: m}
}

// ExactClosednessRange is ExactClosedness over a contiguous window of a TID
// slice without allocating.
func ExactClosednessRange(tids []TID, lo, hi int, cols Columns) Closedness {
	return ExactClosedness(tids[lo:hi], cols)
}

func trailingZeros(m Mask) int { return bits.TrailingZeros64(uint64(m)) }
