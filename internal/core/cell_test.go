package core

import (
	"testing"
)

func TestCellDims(t *testing.T) {
	c := Cell{Values: []Value{1, Star, 2, Star}}
	if c.Dims() != 2 {
		t.Fatalf("Dims = %d", c.Dims())
	}
	if (Cell{Values: []Value{Star, Star}}).Dims() != 0 {
		t.Fatal("apex cell should have 0 dims")
	}
}

func TestCellKeyDistinguishesCuboids(t *testing.T) {
	a := Cell{Values: []Value{1, Star}}
	b := Cell{Values: []Value{Star, 1}}
	c := Cell{Values: []Value{1, 1}}
	if a.Key() == b.Key() || a.Key() == c.Key() || b.Key() == c.Key() {
		t.Fatal("cell keys must be unique per cell")
	}
	if a.Key() != CellKey([]Value{1, Star}) {
		t.Fatal("Key must equal CellKey of values")
	}
}

func TestCellString(t *testing.T) {
	c := Cell{Values: []Value{1, Star, 2}, Count: 7}
	if got := c.String(); got != "(a1, *, c2 : 7)" {
		t.Fatalf("String = %q", got)
	}
}

func TestCovers(t *testing.T) {
	big := Cell{Values: []Value{1, 2, 3}}
	sub := Cell{Values: []Value{1, Star, 3}}
	if !big.Covers(sub) {
		t.Fatal("big should cover sub")
	}
	if sub.Covers(big) {
		t.Fatal("sub must not cover big (dim 1 fixed in big only)")
	}
	other := Cell{Values: []Value{2, Star, 3}}
	if big.Covers(other) {
		t.Fatal("value mismatch must not cover")
	}
	// Every cell covers itself under V(c) <= V(c').
	if !big.Covers(big) {
		t.Fatal("cell must cover itself")
	}
}

func TestSortCellsDeterministic(t *testing.T) {
	cells := []Cell{
		{Values: []Value{2, 1}},
		{Values: []Value{Star, 1}},
		{Values: []Value{1, Star}},
		{Values: []Value{1, 1}},
	}
	SortCells(cells)
	// Star is -1, so it sorts before concrete values.
	want := [][]Value{{Star, 1}, {1, Star}, {1, 1}, {2, 1}}
	for i, w := range want {
		for d := range w {
			if cells[i].Values[d] != w[d] {
				t.Fatalf("pos %d = %v, want %v", i, cells[i].Values, w)
			}
		}
	}
}
