package core

import (
	"math"
	"testing"
)

func TestMeasureKindString(t *testing.T) {
	names := map[MeasureKind]string{
		MeasureNone: "none", MeasureSum: "sum", MeasureMin: "min",
		MeasureMax: "max", MeasureAvg: "avg", MeasureKind(99): "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestDistributive(t *testing.T) {
	if !MeasureSum.Distributive() || !MeasureMin.Distributive() || !MeasureMax.Distributive() {
		t.Fatal("sum/min/max are distributive (paper Example 2)")
	}
	if MeasureAvg.Distributive() {
		t.Fatal("avg is algebraic, not distributive (paper Example 2)")
	}
}

func TestMeasureAggAdd(t *testing.T) {
	for _, k := range []MeasureKind{MeasureSum, MeasureMin, MeasureMax, MeasureAvg} {
		a := NewMeasureAgg(k)
		for _, x := range []float64{3, 1, 2} {
			a.Add(x)
		}
		var want float64
		switch k {
		case MeasureSum:
			want = 6
		case MeasureMin:
			want = 1
		case MeasureMax:
			want = 3
		case MeasureAvg:
			want = 2
		}
		if a.Value() != want {
			t.Errorf("%v.Value() = %v, want %v", k, a.Value(), want)
		}
	}
}

func TestMeasureAggCombineMatchesAdd(t *testing.T) {
	xs := []float64{5, -2, 7, 0, 3.5}
	for _, k := range []MeasureKind{MeasureSum, MeasureMin, MeasureMax, MeasureAvg} {
		whole := NewMeasureAgg(k)
		for _, x := range xs {
			whole.Add(x)
		}
		left, right := NewMeasureAgg(k), NewMeasureAgg(k)
		for i, x := range xs {
			if i%2 == 0 {
				left.Add(x)
			} else {
				right.Add(x)
			}
		}
		left.Combine(right)
		if left.Value() != whole.Value() {
			t.Errorf("%v: combine=%v whole=%v", k, left.Value(), whole.Value())
		}
	}
}

func TestMeasureAggEmpty(t *testing.T) {
	if v := NewMeasureAgg(MeasureSum).Value(); v != 0 {
		t.Fatalf("empty sum = %v", v)
	}
	for _, k := range []MeasureKind{MeasureMin, MeasureMax, MeasureAvg} {
		if v := NewMeasureAgg(k).Value(); !math.IsNaN(v) {
			t.Fatalf("empty %v = %v, want NaN", k, v)
		}
	}
}
