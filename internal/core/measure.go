package core

import "math"

// MeasureKind identifies a complex measure attachable to cells alongside
// count (paper Sec. 6.1). Count is the fundamental measure: Lemma 1 shows a
// cell not closed on count is not closed on any measure, so closed pruning
// and checking always run on count, and the complex measure rides along.
type MeasureKind int

const (
	MeasureNone MeasureKind = iota
	MeasureSum              // distributive
	MeasureMin              // distributive
	MeasureMax              // distributive
	MeasureAvg              // algebraic: (sum, count)
)

// String names the measure kind.
func (k MeasureKind) String() string {
	switch k {
	case MeasureNone:
		return "none"
	case MeasureSum:
		return "sum"
	case MeasureMin:
		return "min"
	case MeasureMax:
		return "max"
	case MeasureAvg:
		return "avg"
	default:
		return "unknown"
	}
}

// Distributive reports whether the measure of a whole can be computed solely
// from the measures of its parts (paper Def. 4). Avg is algebraic (Def. 5):
// it needs the bounded pair (sum, count).
func (k MeasureKind) Distributive() bool {
	return k == MeasureSum || k == MeasureMin || k == MeasureMax
}

// MeasureAgg incrementally aggregates one complex measure. The zero value is
// not ready to use; construct with NewMeasureAgg.
type MeasureAgg struct {
	Kind  MeasureKind
	sum   float64
	min   float64
	max   float64
	count int64
}

// NewMeasureAgg returns an empty aggregate of the given kind.
func NewMeasureAgg(k MeasureKind) MeasureAgg {
	return MeasureAgg{Kind: k, min: math.Inf(1), max: math.Inf(-1)}
}

// Add folds a single tuple's measure input into the aggregate.
func (a *MeasureAgg) Add(x float64) {
	a.sum += x
	a.count++
	if x < a.min {
		a.min = x
	}
	if x > a.max {
		a.max = x
	}
}

// Combine folds another aggregate into a (distributive/algebraic combine).
func (a *MeasureAgg) Combine(b MeasureAgg) {
	a.sum += b.sum
	a.count += b.count
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
}

// Stored returns the aggregate's stored (mergeable) value: the running sum
// for Sum and Avg — avg is the algebraic pair (sum, count), and count is
// always carried separately — and the extremum for Min/Max. Stored values of
// the same kind combine with CombineStored; Present recovers the user-facing
// value. Engines and the cubestore exchange stored values so that shard
// merges, residual folds and router scatters stay exact for every kind.
func (a MeasureAgg) Stored() float64 {
	switch a.Kind {
	case MeasureMin:
		return a.min
	case MeasureMax:
		return a.max
	default:
		return a.sum
	}
}

// StoredIdentity returns the identity element of CombineStored for the kind:
// combining it with any stored value x yields x.
func StoredIdentity(k MeasureKind) float64 {
	switch k {
	case MeasureMin:
		return math.Inf(1)
	case MeasureMax:
		return math.Inf(-1)
	default:
		return 0
	}
}

// CombineStored merges two stored aggregates of the same kind: addition for
// Sum/Avg (distributive sum; avg's algebraic pair adds component-wise), the
// extremum for Min/Max. The operation is associative and commutative, so
// merge order never changes the result for integer-valued inputs.
func CombineStored(k MeasureKind, a, b float64) float64 {
	switch k {
	case MeasureMin:
		if b < a {
			return b
		}
		return a
	case MeasureMax:
		if b > a {
			return b
		}
		return a
	default:
		return a + b
	}
}

// Present converts a stored aggregate plus its cell count to the user-facing
// measure value: the mean for Avg, the stored value otherwise. An empty
// (count 0) min/max/avg presents as NaN, matching MeasureAgg.Value.
func Present(k MeasureKind, stored float64, count int64) float64 {
	switch k {
	case MeasureAvg:
		if count == 0 {
			return math.NaN()
		}
		return stored / float64(count)
	case MeasureMin, MeasureMax:
		if count == 0 {
			return math.NaN()
		}
		return stored
	default:
		return stored
	}
}

// Value returns the aggregate's final measure value. For an empty aggregate
// it returns NaN for min/max/avg and 0 for sum.
func (a MeasureAgg) Value() float64 {
	switch a.Kind {
	case MeasureSum:
		return a.sum
	case MeasureMin:
		if a.count == 0 {
			return math.NaN()
		}
		return a.min
	case MeasureMax:
		if a.count == 0 {
			return math.NaN()
		}
		return a.max
	case MeasureAvg:
		if a.count == 0 {
			return math.NaN()
		}
		return a.sum / float64(a.count)
	default:
		return 0
	}
}
