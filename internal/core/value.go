// Package core defines the cell/cuboid model and the aggregation-based
// closedness machinery from "C-Cubing: Efficient Computation of Closed Cubes
// by Aggregation-Based Checking" (Xin, Shao, Han, Liu; ICDE 2006).
//
// The central idea (paper Sec. 3.2) is that closedness of a group-by cell is
// an algebraic measure: it can be maintained during aggregation from two
// components, a distributive Representative Tuple ID and an algebraic Closed
// Mask, and finally tested against the cell's All Mask. No output index and
// no raw-data rescan is needed.
package core

// Value is a dictionary-encoded dimension value. Values are small
// non-negative integers assigned by a dictionary; two sentinel values mark a
// wildcard position in a cell (Star) and a star-reduced tree node (StarNode).
type Value = int32

const (
	// Star marks a wildcard (*) position of a group-by cell: the cell
	// aggregates over every value of that dimension.
	Star Value = -1

	// StarNode marks a star-tree node that merges all values of a dimension
	// whose support is below min_sup (star reduction, Star-Cubing). It is
	// distinct from Star: a star node is a physical tree artifact, not a
	// wildcard in an output cell.
	StarNode Value = -2
)

// TID identifies a tuple by its 0-based position in the base relation.
type TID int32

// NilTID is the representative-tuple ID of an empty cell (paper Def. 6:
// "in the case the cell is empty, the Representative Tuple ID is set to a
// special value NULL").
const NilTID TID = -1

// MaxDims is the largest number of dimensions supported; masks are 64-bit
// bitsets. The paper's experiments use at most 10 dimensions.
const MaxDims = 64
