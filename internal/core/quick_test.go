package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestMergeIdempotentQuick: merging a measure with itself must not change it
// (required of any well-defined algebraic combine).
func TestMergeIdempotentQuick(t *testing.T) {
	cols := Columns{{1, 2, 3, 1}, {0, 0, 1, 1}}
	f := func(repRaw uint8, mask Mask) bool {
		rep := TID(int(repRaw) % 4)
		c := Closedness{Rep: rep, Mask: mask}
		d := c
		d.Merge(c, LowBits(2), cols)
		return d == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMergeAssociativeQuick: (a·b)·c == a·(b·c) over random tuple triples,
// up to the mask bits of the relation (Lemma 3 requires order-independence).
func TestMergeAssociativeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := 1 + rng.Intn(5)
		n := 3
		cols := make(Columns, nd)
		for d := range cols {
			cols[d] = make([]Value, n)
			for i := range cols[d] {
				cols[d][i] = Value(rng.Intn(2))
			}
		}
		full := LowBits(nd)
		a, b, c := SingletonClosedness(0), SingletonClosedness(1), SingletonClosedness(2)

		left := a
		left.Merge(b, full, cols)
		left.Merge(c, full, cols)

		rightBC := b
		rightBC.Merge(c, full, cols)
		right := a
		right.Merge(rightBC, full, cols)

		return left.Rep == right.Rep && left.Mask&full == right.Mask&full
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestAllMaskRoundTripQuick: AllMask sets exactly the Star positions.
func TestAllMaskRoundTripQuick(t *testing.T) {
	f := func(starBits uint16) bool {
		nd := 16
		vals := make([]Value, nd)
		for d := range vals {
			if starBits&(1<<d) != 0 {
				vals[d] = Star
			} else {
				vals[d] = Value(d)
			}
		}
		m := AllMask(vals)
		for d := range vals {
			if m.Has(d) != (vals[d] == Star) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCellKeyInjectiveQuick: distinct value vectors produce distinct keys.
func TestCellKeyInjectiveQuick(t *testing.T) {
	f := func(a, b [4]int8) bool {
		av := make([]Value, 4)
		bv := make([]Value, 4)
		same := true
		for i := range av {
			av[i], bv[i] = Value(a[i]), Value(b[i])
			if a[i] != b[i] {
				same = false
			}
		}
		return (CellKey(av) == CellKey(bv)) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestClosedMonotoneQuick: removing bits from the all-mask can only make a
// cell "more closed" (fixing a dimension never un-closes a cell).
func TestClosedMonotoneQuick(t *testing.T) {
	f := func(mask, all Mask) bool {
		c := Closedness{Rep: 0, Mask: mask}
		if c.Closed(all) {
			// Any sub-mask of the all-mask must also report closed.
			return c.Closed(all & (all >> 1))
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
