package core

import (
	"math/rand"
	"testing"
)

// testCols builds a small Columns relation from row-major literals.
func testCols(rows [][]Value) Columns {
	if len(rows) == 0 {
		return nil
	}
	nd := len(rows[0])
	cols := make(Columns, nd)
	for d := 0; d < nd; d++ {
		cols[d] = make([]Value, len(rows))
		for t, r := range rows {
			cols[d][t] = r[d]
		}
	}
	return cols
}

func TestEmptyClosednessIsMergeIdentity(t *testing.T) {
	cols := testCols([][]Value{{1, 2}, {1, 3}})
	a := SingletonClosedness(0)
	a.MergeTuple(1, ^Mask(0), cols)
	b := a
	b.Merge(EmptyClosedness(), ^Mask(0), cols)
	if b != a {
		t.Fatalf("merge with empty changed measure: %+v vs %+v", b, a)
	}
	e := EmptyClosedness()
	e.Merge(a, ^Mask(0), cols)
	if e != a {
		t.Fatalf("empty.Merge(a) = %+v, want %+v", e, a)
	}
}

func TestSingletonClosedness(t *testing.T) {
	c := SingletonClosedness(5)
	if c.Rep != 5 || c.Mask != ^Mask(0) {
		t.Fatalf("singleton = %+v", c)
	}
	// A fully-fixed single-tuple cell is closed (nothing is a wildcard).
	if !c.Closed(0) {
		t.Fatal("singleton with empty all-mask must be closed")
	}
	// With a wildcard dimension it is never closed: the single tuple shares
	// its value with itself.
	if c.Closed(Bit(0)) {
		t.Fatal("singleton with a wildcard must not be closed")
	}
}

func TestMergeTupleSharedAndUnshared(t *testing.T) {
	// Tuples (1,7,3) and (1,9,3): dims 0 and 2 shared, dim 1 not.
	cols := testCols([][]Value{{1, 7, 3}, {1, 9, 3}})
	c := SingletonClosedness(0)
	c.MergeTuple(1, LowBits(3), cols)
	want := Mask(0).With(0).With(2) | ^LowBits(3) // untouched high bits stay 1
	if c.Mask != want {
		t.Fatalf("mask = %v, want %v", c.Mask.StringDims(3), want.StringDims(3))
	}
	if c.Rep != 0 {
		t.Fatalf("rep = %d, want 0 (minimum)", c.Rep)
	}
}

func TestMergeKeepsMinimumRep(t *testing.T) {
	cols := testCols([][]Value{{1}, {1}, {1}})
	a := SingletonClosedness(2)
	a.MergeTuple(0, LowBits(1), cols)
	if a.Rep != 0 {
		t.Fatalf("rep = %d, want 0", a.Rep)
	}
	b := SingletonClosedness(1)
	b.Merge(a, LowBits(1), cols)
	if b.Rep != 0 {
		t.Fatalf("rep after merge = %d, want 0", b.Rep)
	}
}

func TestMergeRespectsCheckMask(t *testing.T) {
	// Tuples differ on dim 0, but dim 0 is outside the check mask, so the
	// bit must survive a plain-AND combine (partial-mask semantics).
	cols := testCols([][]Value{{1, 5}, {2, 5}})
	a := SingletonClosedness(0)
	b := SingletonClosedness(1)
	a.Merge(b, Bit(1), cols) // only dim 1 checked
	if !a.Mask.Has(0) {
		t.Fatal("unchecked dim 0 bit must be preserved by AND")
	}
	if !a.Mask.Has(1) {
		t.Fatal("dim 1 is shared; bit must stay set")
	}

	// Same merge with a full check mask clears dim 0.
	a2 := SingletonClosedness(0)
	a2.Merge(SingletonClosedness(1), LowBits(2), cols)
	if a2.Mask.Has(0) {
		t.Fatal("checked differing dim 0 must be cleared")
	}
}

func TestExactClosedness(t *testing.T) {
	cols := testCols([][]Value{
		{1, 1, 1, 1},
		{1, 1, 2, 1},
		{1, 2, 2, 1},
	})
	c := ExactClosedness([]TID{0, 1, 2}, cols)
	if c.Rep != 0 {
		t.Fatalf("rep = %d", c.Rep)
	}
	want := Bit(0) | Bit(3)
	if c.Mask&LowBits(4) != want {
		t.Fatalf("mask = %v, want %v", (c.Mask & LowBits(4)).StringDims(4), want.StringDims(4))
	}
	if got := ExactClosedness(nil, cols); got != EmptyClosedness() {
		t.Fatalf("empty exact = %+v", got)
	}
}

func TestExactClosednessRange(t *testing.T) {
	cols := testCols([][]Value{{1}, {2}, {2}})
	tids := []TID{0, 1, 2}
	c := ExactClosednessRange(tids, 1, 3, cols)
	if !c.Mask.Has(0) || c.Rep != 1 {
		t.Fatalf("range closedness = %+v", c)
	}
}

// TestMergeMatchesExact is the core invariant: folding tuples one by one (or
// in arbitrary sub-groups, in arbitrary order) with a full check mask must
// equal the definitional scan. This is Lemma 3 of the paper.
func TestMergeMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nd := 1 + rng.Intn(6)
		n := 1 + rng.Intn(20)
		rows := make([][]Value, n)
		for i := range rows {
			rows[i] = make([]Value, nd)
			for d := range rows[i] {
				rows[i][d] = Value(rng.Intn(3))
			}
		}
		cols := testCols(rows)
		full := LowBits(nd)

		tids := make([]TID, n)
		for i := range tids {
			tids[i] = TID(i)
		}
		want := ExactClosedness(tids, cols)

		// Random binary-tree aggregation order.
		parts := make([]Closedness, n)
		for i := range parts {
			parts[i] = SingletonClosedness(TID(i))
		}
		for len(parts) > 1 {
			i := rng.Intn(len(parts) - 1)
			parts[i].Merge(parts[i+1], full, cols)
			parts = append(parts[:i+1], parts[i+2:]...)
		}
		got := parts[0]
		if got.Rep != want.Rep || got.Mask&full != want.Mask&full {
			t.Fatalf("trial %d: merged %+v, exact %+v", trial, got, want)
		}
	}
}

// TestMergeCommutative checks the combine is order-insensitive, a requirement
// for it to be a legal algebraic measure.
func TestMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		nd := 1 + rng.Intn(5)
		rows := [][]Value{
			make([]Value, nd), make([]Value, nd), make([]Value, nd),
		}
		for _, r := range rows {
			for d := range r {
				r[d] = Value(rng.Intn(2))
			}
		}
		cols := testCols(rows)
		full := LowBits(nd)

		ab := SingletonClosedness(0)
		ab.MergeTuple(1, full, cols)
		ab.MergeTuple(2, full, cols)

		ba := SingletonClosedness(2)
		ba.MergeTuple(1, full, cols)
		ba.MergeTuple(0, full, cols)

		if ab.Mask&full != ba.Mask&full || ab.Rep != ba.Rep {
			t.Fatalf("trial %d: order-dependent merge: %+v vs %+v", trial, ab, ba)
		}
	}
}

func TestClosedDecision(t *testing.T) {
	// Paper Sec. 3.2: cell non-closed iff closedness measure has a set bit.
	c := Closedness{Rep: 0, Mask: Bit(1) | Bit(3)}
	if !c.Closed(Bit(0) | Bit(2)) {
		t.Fatal("no overlap: closed expected")
	}
	if c.Closed(Bit(3)) {
		t.Fatal("overlap on dim 3: non-closed expected")
	}
}
