package core

import (
	"math/bits"
	"strings"
)

// Mask is a bitset over dimensions: bit d corresponds to dimension d of the
// base relation (0-based, at most MaxDims dimensions).
//
// Three masks drive closed-cube computation (paper Defs. 7-9, Sec. 4.3):
//
//   - Closed Mask: bit d is 1 iff every tuple aggregated into the cell has
//     the same value on dimension d.
//   - All Mask: bit d is 1 iff the cell has a wildcard (*) on dimension d.
//   - Tree Mask: bit d is 1 iff dimension d has been collapsed on the path of
//     child-tree derivations that produced the current cuboid tree.
//
// A cell is closed iff ClosedMask & AllMask == 0: no wildcard dimension on
// which all of the cell's tuples share a single value.
type Mask uint64

// Bit returns a mask with only bit d set.
func Bit(d int) Mask { return Mask(1) << uint(d) }

// LowBits returns a mask with bits 0..n-1 set. It panics if n is negative or
// exceeds MaxDims.
func LowBits(n int) Mask {
	if n < 0 || n > MaxDims {
		panic("core: LowBits out of range")
	}
	if n == MaxDims {
		return ^Mask(0)
	}
	return Mask(1)<<uint(n) - 1
}

// Has reports whether bit d is set.
func (m Mask) Has(d int) bool { return m&Bit(d) != 0 }

// With returns m with bit d set.
func (m Mask) With(d int) Mask { return m | Bit(d) }

// Without returns m with bit d cleared.
func (m Mask) Without(d int) Mask { return m &^ Bit(d) }

// OnesCount returns the number of set bits.
func (m Mask) OnesCount() int { return bits.OnesCount64(uint64(m)) }

// Dims returns the set dimensions in ascending order, appended to dst.
func (m Mask) Dims(dst []int) []int {
	for m != 0 {
		d := bits.TrailingZeros64(uint64(m))
		dst = append(dst, d)
		m &= m - 1
	}
	return dst
}

// String renders the mask as a little-endian bit string over nd dimensions,
// e.g. (1,0,1,0) for a 4-dimensional mask with bits 0 and 2 set.
func (m Mask) String() string { return m.StringDims(MaxDims) }

// StringDims renders the first nd bits of the mask, dimension 0 first.
func (m Mask) StringDims(nd int) string {
	var b strings.Builder
	b.WriteByte('(')
	for d := 0; d < nd; d++ {
		if d > 0 {
			b.WriteByte(',')
		}
		if m.Has(d) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	b.WriteByte(')')
	return b.String()
}

// AllMask computes the All Mask of a cell (paper Def. 8): bit d set iff
// vals[d] is Star.
func AllMask(vals []Value) Mask {
	var m Mask
	for d, v := range vals {
		if v == Star {
			m |= Bit(d)
		}
	}
	return m
}
