// Package load parses and type-checks packages for the cclint analyzers
// without depending on golang.org/x/tools/go/packages (unavailable offline).
//
// Imports are resolved from compiled gc export data, the same way the
// upstream unitchecker does: a lookup function maps an import path to an
// export-data file and importer.ForCompiler does the decoding. The file map
// comes either from a go vet vetConfig (PackageFile + ImportMap) or from
// `go list -e -deps -export -json`, which also builds any missing export
// data into the build cache — including the standard library, so it works
// with no module downloads.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"ccubing/internal/lint/analysis"
)

// ListPackage mirrors the `go list -json` fields the driver consumes.
type ListPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// GoList runs `go list -e -deps -export -json` on the patterns from dir
// (empty = current directory) and decodes the package stream.
func GoList(dir string, patterns ...string) ([]*ListPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}
	var pkgs []*ListPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p ListPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Exports collects the import-path → export-data-file map from a go list
// result set.
func Exports(pkgs []*ListPackage) map[string]string {
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	return m
}

// Importer returns a types.Importer that decodes gc export data. exports
// maps an import path to its export file; aliases (may be nil) maps an
// import path as written in source to the path to load instead (the
// vetConfig ImportMap for vendoring and test variants).
func Importer(fset *token.FileSet, exports, aliases map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if a, ok := aliases[path]; ok {
			path = a
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Package is one parsed, type-checked package ready to analyze.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Check parses filenames and type-checks them as one package. Type errors
// are returned joined but do not discard the (partial) result.
func Check(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, error) {
	files, err := Parse(fset, filenames)
	if err != nil {
		return nil, err
	}
	return CheckFiles(fset, path, files, imp)
}

// Parse parses each file with comments retained.
func Parse(fset *token.FileSet, filenames []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// CheckFiles type-checks already-parsed files as one package.
func CheckFiles(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := analysis.NewInfo()
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err.Error()) },
	}
	pkg, _ := conf.Check(path, fset, files, info)
	res := &Package{Path: path, Fset: fset, Files: files, Pkg: pkg, Info: info}
	if len(typeErrs) > 0 {
		return res, fmt.Errorf("%s", strings.Join(typeErrs, "\n"))
	}
	return res, nil
}

// Dir lists the non-test .go files of a directory (lexical order), for
// loading fixture packages that bypass the go tool.
func Dir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	return out, nil
}
