package storemut_test

import (
	"testing"

	"ccubing/internal/lint/analysistest"
	"ccubing/internal/lint/storemut"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", storemut.Analyzer, "a")
}
