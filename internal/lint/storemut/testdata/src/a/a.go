// Package a is the storemut fixture: writes through frozen struct fields
// are flagged outside //ccubing:mutates files.
package a

// Frozen models a published snapshot: built once, then served immutably.
//
//ccubing:freeze
type Frozen struct {
	dims   int
	counts []uint32
	sub    inner
}

type inner struct{ rows []int }

// Loose has no freeze annotation: writes are unrestricted.
type Loose struct{ n int }

func mutate(f *Frozen, l *Loose, n int) {
	f.dims = n       // want `write to frozen Frozen\.dims outside`
	f.counts[0] = 1  // want `write to frozen Frozen\.counts outside`
	f.dims++         // want `write to frozen Frozen\.dims outside`
	f.sub.rows[n] = 0 // want `write to frozen Frozen\.sub outside`
	f.dims += n      // want `write to frozen Frozen\.dims outside`
	p := &f.counts   // want `address taken of frozen Frozen\.counts outside`
	_ = p
	l.n = n // unfrozen struct: fine
}

func read(f *Frozen) int {
	local := f.counts[0] // reads are fine
	return f.dims + int(local)
}

func patch(f *Frozen) {
	//ccubing:allow private pre-publish copy, not yet visible to readers
	f.dims = 0
}
