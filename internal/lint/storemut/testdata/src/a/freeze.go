// Build-time mutators for Frozen live in this file.
//
//ccubing:mutates Frozen
package a

func build(n int) *Frozen {
	f := &Frozen{dims: n}
	f.counts = make([]uint32, n) // allowlisted file: fine
	for i := range f.counts {
		f.counts[i]++
	}
	f.sub.rows = append(f.sub.rows, n)
	return f
}
