// Package storemut defines an analyzer that treats structs annotated
// //ccubing:freeze as immutable after construction: cubestore.Store and its
// per-cuboid groups are built once, published behind an atomic snapshot
// pointer, and then served concurrently without locks — any later write is
// a data race even if no test catches it.
//
// The analyzer flags, outside files carrying a file-scope
// //ccubing:mutates <Type> comment, every write whose destination path
// passes through a field of a frozen struct (plain assignment, compound
// assignment, ++/--, element stores like s.counts[i] = x) and every
// explicit &s.field, which would let the address escape to a writer.
// Method calls on frozen fields (st.scratch.Get()) take the address
// implicitly and are not flagged: pools and striped counters on the store
// are designed for concurrent use.
package storemut

import (
	"go/ast"
	"go/token"
	"go/types"

	"ccubing/internal/lint/analysis"
	"ccubing/internal/lint/annot"
)

// Analyzer flags writes to //ccubing:freeze structs outside their
// //ccubing:mutates allowlisted files.
var Analyzer = &analysis.Analyzer{
	Name: "storemut",
	Doc:  "flag writes to frozen snapshot structs outside builder/freeze files",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	files := annot.NonTest(pass.Fset, pass.Files)
	allows := annot.CollectAllows(pass.Fset, files)
	for _, pos := range allows.Bad() {
		pass.Reportf(pos, "//ccubing:allow needs a reason")
	}

	frozen := frozenTypes(pass, files)
	if len(frozen) == 0 {
		return nil, nil
	}

	for _, f := range files {
		exempt := map[string]bool{}
		for _, cg := range f.Comments {
			for _, arg := range annot.Directive(cg, "mutates") {
				for _, name := range annot.SplitNames(arg) {
					exempt[name] = true
				}
			}
		}
		c := &checker{pass: pass, allows: allows, frozen: frozen, exempt: exempt}
		ast.Inspect(f, c.visit)
	}
	return nil, nil
}

// frozenTypes collects the named struct types annotated //ccubing:freeze.
func frozenTypes(pass *analysis.Pass, files []*ast.File) map[*types.TypeName]bool {
	frozen := map[*types.TypeName]bool{}
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				if !annot.Has(gd.Doc, "freeze") && !annot.Has(ts.Doc, "freeze") {
					continue
				}
				if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					frozen[tn] = true
				}
			}
		}
	}
	return frozen
}

type checker struct {
	pass   *analysis.Pass
	allows *annot.Allows
	frozen map[*types.TypeName]bool
	exempt map[string]bool
}

func (c *checker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if n.Tok == token.DEFINE {
			return true
		}
		for _, lhs := range n.Lhs {
			c.checkWrite(lhs, "write to")
		}
	case *ast.IncDecStmt:
		c.checkWrite(n.X, "write to")
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			c.checkWrite(n.X, "address taken of")
		}
	}
	return true
}

// checkWrite walks the destination path inward (through parens, indexing,
// slicing and dereferences) and reports the outermost frozen field it
// passes through.
func (c *checker) checkWrite(e ast.Expr, verb string) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if tn, fieldName, ok := c.frozenField(x); ok {
				if _, allowed := c.allows.Allowed(c.pass.Fset, x.Pos()); !allowed && !c.exempt[tn.Name()] {
					c.pass.Reportf(x.Pos(), "%s frozen %s.%s outside a //ccubing:mutates %s file",
						verb, tn.Name(), fieldName, tn.Name())
				}
				return
			}
			e = x.X
		default:
			return
		}
	}
}

// frozenField reports whether sel selects a field of a frozen struct.
func (c *checker) frozenField(sel *ast.SelectorExpr) (*types.TypeName, string, bool) {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, "", false
	}
	t := s.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, "", false
	}
	if !c.frozen[named.Obj()] {
		return nil, "", false
	}
	return named.Obj(), sel.Sel.Name, true
}
