package lockorder_test

import (
	"testing"

	"ccubing/internal/lint/analysistest"
	"ccubing/internal/lint/lockorder"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "a")
}
