package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
)

// held is the set of mutexes definitely held at a program point.
type held map[*types.Var]bool

func clone(st held) held {
	out := make(held, len(st))
	for k := range st {
		out[k] = true
	}
	return out
}

func intersect(a, b held) held {
	out := held{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// interp runs the must-hold interpretation over one function body (or one
// function literal, with inLit set: literals run in an unknown caller
// context, so requires- and guard-checks are skipped there).
type interp struct {
	tr    *tracker
	fd    *ast.FuncDecl
	inLit bool
	lits  *[]*ast.FuncLit
}

func (tr *tracker) interpret(info *funcInfo) {
	var lits []*ast.FuncLit
	it := &interp{tr: tr, fd: info.fd, lits: &lits}
	st := held{}
	for mu := range info.requires {
		st[mu] = true
	}
	it.block(info.fd.Body.List, st)
	// Literals collected above (and any nested in them) get their own pass.
	for i := 0; i < len(lits); i++ {
		li := &interp{tr: tr, fd: info.fd, inLit: true, lits: &lits}
		li.block(lits[i].Body.List, held{})
	}
}

func (it *interp) block(list []ast.Stmt, st held) (held, bool) {
	st = clone(st)
	for _, s := range list {
		var term bool
		st, term = it.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

// stmt interprets one statement, returning the state after it and whether
// control definitely does not fall through to the next statement.
func (it *interp) stmt(s ast.Stmt, st held) (held, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return it.block(s.List, st)
	case *ast.LabeledStmt:
		return it.stmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = it.stmt(s.Init, st)
		}
		it.exprs(s.Cond, st)
		thenSt, thenTerm := it.block(s.Body.List, st)
		elseSt, elseTerm := clone(st), false
		if s.Else != nil {
			elseSt, elseTerm = it.stmt(s.Else, st)
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		}
		return intersect(thenSt, elseSt), false
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = it.stmt(s.Init, st)
		}
		it.exprs(s.Cond, st)
		bodySt, term := it.block(s.Body.List, st)
		if s.Post != nil && !term {
			it.stmt(s.Post, bodySt)
		}
		// The loop may run zero times; after-state is the meet.
		return intersect(st, bodySt), false
	case *ast.RangeStmt:
		it.exprs(s.X, st)
		bodySt, _ := it.block(s.Body.List, st)
		return intersect(st, bodySt), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = it.stmt(s.Init, st)
		}
		it.exprs(s.Tag, st)
		return it.clauses(s.Body.List, st, hasDefault(s.Body.List))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = it.stmt(s.Init, st)
		}
		it.exprs(s.Assign, st)
		return it.clauses(s.Body.List, st, hasDefault(s.Body.List))
	case *ast.SelectStmt:
		return it.clauses(s.Body.List, st, true)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the mutex held for the rest of the
		// function; other deferred calls run in the exit state, which this
		// analysis does not model. Arguments are evaluated now, though.
		if mu, _ := it.tr.lockOp(s.Call); mu == nil {
			for _, a := range s.Call.Args {
				it.exprs(a, st)
			}
		}
		return st, false
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			it.exprs(a, st)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			*it.lits = append(*it.lits, lit)
		}
		return st, false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			it.exprs(r, st)
		}
		return st, true
	case *ast.BranchStmt:
		return st, true
	default:
		it.exprs(s, st)
		return st, false
	}
}

// clauses merges the exits of switch/select cases: the meet of every
// non-terminating clause, plus the entry state when no default exists.
func (it *interp) clauses(list []ast.Stmt, st held, exhaustive bool) (held, bool) {
	var exits []held
	for _, cl := range list {
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				it.exprs(e, st)
			}
			body = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				it.stmt(cl.Comm, clone(st))
			}
			body = cl.Body
		}
		if out, term := it.block(body, st); !term {
			exits = append(exits, out)
		}
	}
	if !exhaustive {
		exits = append(exits, st)
	}
	if len(exits) == 0 {
		return st, exhaustive
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = intersect(out, e)
	}
	return out, false
}

func hasDefault(list []ast.Stmt) bool {
	for _, cl := range list {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// exprs processes the calls and guarded-field accesses inside an
// expression (or simple statement), threading lock effects through st.
// Function literals are queued for a separate pass, not descended into.
func (it *interp) exprs(n ast.Node, st held) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			*it.lits = append(*it.lits, x)
			return false
		case *ast.CallExpr:
			it.call(x, st)
		case *ast.SelectorExpr:
			it.guardedAccess(x, st)
		}
		return true
	})
}

func (it *interp) call(call *ast.CallExpr, st held) {
	tr := it.tr
	if mu, op := tr.lockOp(call); mu != nil {
		switch op {
		case "Lock", "RLock":
			it.acquire(mu, call.Pos(), st)
		case "Unlock", "RUnlock":
			delete(st, mu)
		}
		return
	}
	fn := tr.staticCallee(call)
	if fn == nil {
		return
	}
	ci, ok := tr.infos[fn]
	if !ok {
		return
	}
	if !it.inLit {
		for mu := range ci.requires {
			if !st[mu] {
				tr.report(call.Pos(), "call to %s without holding %s", fn.Name(), mu.Name())
			}
		}
	}
	for a := range ci.acquires {
		if ci.requires[a] {
			continue // reacquisition of its own precondition is its business
		}
		for h := range st {
			// A held mutex the callee declares as precondition is checked
			// inside the callee's own interpretation; one the callee
			// releases is dropped before its later acquisitions (the
			// appendLocked → Flush pattern).
			if ci.requires[h] || ci.releases[h] {
				continue
			}
			if h == a {
				tr.report(call.Pos(), "call to %s acquires %s while already holding it", fn.Name(), a.Name())
			} else if tr.ordered(a, h) {
				tr.report(call.Pos(), "call to %s acquires %s while holding %s; declared order is %s < %s",
					fn.Name(), a.Name(), h.Name(), a.Name(), h.Name())
			}
		}
	}
	for mu := range ci.releases {
		delete(st, mu)
	}
}

func (it *interp) acquire(mu *types.Var, pos token.Pos, st held) {
	if st[mu] {
		it.tr.report(pos, "acquires %s while already holding it", mu.Name())
	}
	for h := range st {
		if h != mu && it.tr.ordered(mu, h) {
			it.tr.report(pos, "acquires %s while holding %s; declared order is %s < %s",
				mu.Name(), h.Name(), mu.Name(), h.Name())
		}
	}
	st[mu] = true
}

// ordered reports whether the declared order requires a before h.
func (tr *tracker) ordered(a, h *types.Var) bool {
	return tr.order[a.Name()][h.Name()]
}

// guardedAccess flags touching a field listed in a mutex's "guards ..."
// comment without holding that mutex. Accesses rooted at function-local
// values are exempt: a value under construction is not yet shared.
func (it *interp) guardedAccess(sel *ast.SelectorExpr, st held) {
	if it.inLit {
		return
	}
	tr := it.tr
	s, ok := tr.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	fv, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	mu, ok := tr.guards[fv]
	if !ok || st[mu] {
		return
	}
	if it.localRoot(sel) {
		return
	}
	tr.report(sel.Sel.Pos(), "access to %s guarded by %s without holding it", fv.Name(), mu.Name())
}

// localRoot reports whether the selector path is rooted at a variable
// declared inside the current function body (or at a call result).
func (it *interp) localRoot(sel *ast.SelectorExpr) bool {
	e := sel.X
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.CallExpr:
			return true
		case *ast.Ident:
			v, ok := it.tr.pass.TypesInfo.Uses[x].(*types.Var)
			if !ok {
				return true
			}
			body := it.fd.Body
			return v.Pos() >= body.Pos() && v.Pos() <= body.End()
		default:
			return true
		}
	}
}
