// Package a is the lockorder fixture, modeled on refresh.Manager: two
// tracked mutexes with a declared flushMu < appendMu order, guarded fields,
// *Locked-suffixed helpers and a release-before-acquire drain.
package a

import "sync"

// mgr mirrors the refresh manager's locking structure.
//
//ccubing:lockorder flushMu < appendMu
type mgr struct {
	appendMu sync.Mutex // guards log
	flushMu  sync.Mutex // serializes flushes; guards base
	log      []int
	base     []int
	other    int // unguarded
}

func (m *mgr) good() {
	m.flushMu.Lock()
	m.appendMu.Lock()
	m.log = append(m.log, 1)
	m.appendMu.Unlock()
	m.base = append(m.base, 1)
	m.flushMu.Unlock()
}

// inverted reproduces the pre-fix bug pattern this analyzer exists for:
// taking appendMu first, then flushMu, deadlocking against good().
func (m *mgr) inverted() {
	m.appendMu.Lock()
	defer m.appendMu.Unlock()
	m.flushMu.Lock() // want `acquires flushMu while holding appendMu; declared order is flushMu < appendMu`
	defer m.flushMu.Unlock()
	m.base = append(m.base, 1)
	m.log = append(m.log, 1)
}

// flushBaseLocked reads flush state. Caller holds flushMu.
func (m *mgr) flushBaseLocked() int { return len(m.base) }

func (m *mgr) callsWithout() int {
	return m.flushBaseLocked() // want `call to flushBaseLocked without holding flushMu`
}

func (m *mgr) callsWith() int {
	m.flushMu.Lock()
	defer m.flushMu.Unlock()
	return m.flushBaseLocked()
}

func (m *mgr) orphanLocked() {} // want `orphanLocked is \*Locked-suffixed but declares no required mutex`

func (m *mgr) raw() int {
	return len(m.log) // want `access to log guarded by appendMu without holding it`
}

func newMgr() *mgr {
	m := &mgr{}
	m.log = append(m.log, 0) // constructor-local value: not yet shared
	return m
}

func (m *mgr) flush() {
	m.flushMu.Lock()
	m.base = append(m.base, 1)
	m.flushMu.Unlock()
}

// drainLocked finishes an append batch.
//
//ccubing:requires appendMu
//ccubing:releases appendMu
func (m *mgr) drainLocked() {
	n := len(m.log)
	m.appendMu.Unlock()
	if n > 0 {
		m.flush() // appendMu already released: ordered acquisition
	}
}

func (m *mgr) appendThenDrain() {
	m.appendMu.Lock()
	m.log = append(m.log, 1)
	m.drainLocked()
}

func (m *mgr) indirectInverted() {
	m.appendMu.Lock()
	defer m.appendMu.Unlock()
	m.flush() // want `call to flush acquires flushMu while holding appendMu; declared order is flushMu < appendMu`
	m.log = append(m.log, 1)
}

func (m *mgr) double() {
	m.flushMu.Lock()
	m.flushMu.Lock() // want `acquires flushMu while already holding it`
	m.flushMu.Unlock()
	m.flushMu.Unlock()
}

func (m *mgr) async() {
	go func() {
		m.flush() // a goroutine starts with nothing held: ordered
	}()
}

func (m *mgr) branchy(ok bool) int {
	m.appendMu.Lock()
	if !ok {
		m.appendMu.Unlock()
		return 0
	}
	n := len(m.log) // held on every path reaching here
	m.appendMu.Unlock()
	return n
}

func (m *mgr) special() {
	m.appendMu.Lock()
	defer m.appendMu.Unlock()
	//ccubing:allow startup-only path, single-threaded by construction
	m.flushMu.Lock()
	m.flushMu.Unlock()
}
