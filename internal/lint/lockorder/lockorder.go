// Package lockorder defines an analyzer that enforces the declared mutex
// discipline of a package — in this repo, refresh.Manager's documented
// flushMu → appendMu order, whose inversion would deadlock Flush against
// Delete/Update validation.
//
// Contracts are read from the source itself:
//
//   - a mutex field whose comment says "guards <fields>" is tracked, and the
//     named sibling fields may only be touched while it is held;
//   - //ccubing:lockorder a < b declares the acquisition order;
//   - //ccubing:requires mu (or a "Caller holds mu" doc line) declares a
//     function's lock precondition; //ccubing:releases mu declares that the
//     function drops the caller's lock itself;
//   - a *Locked-suffixed function must declare at least one required mutex.
//
// The analyzer runs a per-function must-hold interpretation: sequential
// statements thread a definitely-held set, branches merge by intersection
// with returning branches excluded, defer mu.Unlock() keeps the mutex held.
// It flags order inversions (direct, and through calls: a callee's
// transitive acquisitions are checked against mutexes the caller still
// holds, excluding those the callee declares as its own preconditions),
// double acquisition, calls to functions whose required mutex is not held,
// and guarded-field access without the guard. Function literals are
// interpreted with an empty held set and exempted from requires/guard
// checks: closures often run under locks held by the function they are
// passed to, which intra-procedural analysis cannot see.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"ccubing/internal/lint/analysis"
	"ccubing/internal/lint/annot"
)

// Analyzer enforces declared lock ordering and lock preconditions.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "flag inverted mutex acquisition and unguarded access to protected state",
	Run:  run,
}

type tracker struct {
	pass    *analysis.Pass
	allows  *annot.Allows
	mutexes map[*types.Var]bool        // tracked mutex fields
	byName  map[string]*types.Var      // mutex name -> field
	guards  map[*types.Var]*types.Var  // guarded field -> its mutex
	order   map[string]map[string]bool // order[a][b]: a acquired before b
	infos   map[*types.Func]*funcInfo
	seen    map[string]bool // dedup: one report per position+message
}

type funcInfo struct {
	fd       *ast.FuncDecl
	requires map[*types.Var]bool
	releases map[*types.Var]bool
	callees  map[*types.Func]bool
	acquires map[*types.Var]bool // transitive may-acquire (excl. requires)
}

func run(pass *analysis.Pass) (interface{}, error) {
	files := annot.NonTest(pass.Fset, pass.Files)
	allows := annot.CollectAllows(pass.Fset, files)
	for _, pos := range allows.Bad() {
		pass.Reportf(pos, "//ccubing:allow needs a reason")
	}

	tr := &tracker{
		pass:    pass,
		allows:  allows,
		mutexes: map[*types.Var]bool{},
		byName:  map[string]*types.Var{},
		guards:  map[*types.Var]*types.Var{},
		order:   map[string]map[string]bool{},
		infos:   map[*types.Func]*funcInfo{},
		seen:    map[string]bool{},
	}
	orderNames := tr.collectOrder(files)
	tr.collectMutexes(files, orderNames)
	if len(tr.mutexes) == 0 {
		return nil, nil
	}
	tr.collectFuncs(files)
	tr.closeAcquires()

	for _, info := range tr.infos {
		tr.interpret(info)
	}
	return nil, nil
}

func (tr *tracker) report(pos token.Pos, format string, args ...interface{}) {
	if _, ok := tr.allows.Allowed(tr.pass.Fset, pos); ok {
		return
	}
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%v:%s", tr.pass.Fset.Position(pos), msg)
	if tr.seen[key] {
		return // e.g. x = append(x, ...) touches the same guarded field twice
	}
	tr.seen[key] = true
	tr.pass.Reportf(pos, "%s", msg)
}

// collectOrder parses every //ccubing:lockorder a < b [< c] directive and
// returns the set of mutex names they mention.
func (tr *tracker) collectOrder(files []*ast.File) map[string]bool {
	names := map[string]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, arg := range annot.Directive(cg, "lockorder") {
				var chain []string
				for _, part := range strings.Split(arg, "<") {
					if part = strings.TrimSpace(part); part != "" {
						chain = append(chain, part)
						names[part] = true
					}
				}
				if len(chain) < 2 {
					tr.report(cg.Pos(), "//ccubing:lockorder needs at least two mutexes: %q", arg)
					continue
				}
				for i := 0; i < len(chain); i++ {
					for j := i + 1; j < len(chain); j++ {
						m := tr.order[chain[i]]
						if m == nil {
							m = map[string]bool{}
							tr.order[chain[i]] = m
						}
						m[chain[j]] = true
					}
				}
			}
		}
	}
	return names
}

var guardsRE = regexp.MustCompile(`guards\s+(.+)`)

// collectMutexes walks struct declarations for sync.Mutex/RWMutex fields
// that carry a "guards ..." comment or appear in a lockorder declaration.
func (tr *tracker) collectMutexes(files []*ast.File, orderNames map[string]bool) {
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				st, ok := spec.(*ast.TypeSpec).Type.(*ast.StructType)
				if !ok {
					continue
				}
				tr.structMutexes(st, orderNames)
			}
		}
	}
}

func (tr *tracker) structMutexes(st *ast.StructType, orderNames map[string]bool) {
	// Sibling fields by name, for resolving "guards x, y" lists.
	siblings := map[string]*types.Var{}
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if v, ok := tr.pass.TypesInfo.Defs[name].(*types.Var); ok {
				siblings[name.Name] = v
			}
		}
	}
	for _, field := range st.Fields.List {
		if !isMutex(tr.pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		comment := field.Doc.Text() + " " + field.Comment.Text()
		var guarded []string
		if m := guardsRE.FindStringSubmatch(comment); m != nil {
			guarded = annot.SplitNames(strings.TrimRight(m[1], "."))
		}
		for _, name := range field.Names {
			v, ok := tr.pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if guarded == nil && !orderNames[name.Name] {
				continue // an untracked mutex: no declared contract
			}
			tr.mutexes[v] = true
			if _, dup := tr.byName[name.Name]; !dup {
				tr.byName[name.Name] = v
			}
			for _, g := range guarded {
				if fv, ok := siblings[g]; ok {
					tr.guards[fv] = v
				}
			}
		}
	}
}

func isMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// collectFuncs indexes every declared function: its lock preconditions,
// releases, direct acquisitions and static same-package callees.
func (tr *tracker) collectFuncs(files []*ast.File) {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := tr.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &funcInfo{
				fd:       fd,
				requires: map[*types.Var]bool{},
				releases: map[*types.Var]bool{},
				callees:  map[*types.Func]bool{},
				acquires: map[*types.Var]bool{},
			}
			for _, arg := range annot.Directive(fd.Doc, "requires") {
				for _, name := range annot.SplitNames(arg) {
					if v, ok := tr.byName[name]; ok {
						info.requires[v] = true
					} else {
						tr.report(fd.Name.Pos(), "//ccubing:requires names unknown mutex %s", name)
					}
				}
			}
			for _, name := range annot.CallerHolds(fd.Doc) {
				if v, ok := tr.byName[name]; ok {
					info.requires[v] = true
				}
			}
			for _, arg := range annot.Directive(fd.Doc, "releases") {
				for _, name := range annot.SplitNames(arg) {
					if v, ok := tr.byName[name]; ok {
						info.releases[v] = true
					} else {
						tr.report(fd.Name.Pos(), "//ccubing:releases names unknown mutex %s", name)
					}
				}
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") && len(info.requires) == 0 {
				tr.report(fd.Name.Pos(),
					"%s is *Locked-suffixed but declares no required mutex; add //ccubing:requires <mu> or a 'Caller holds <mu>' doc line",
					fd.Name.Name)
			}
			tr.collectBody(fd.Body, info)
			tr.infos[fn] = info
		}
	}
}

// collectBody records direct lock acquisitions and static callees,
// excluding function literals (they run in an unknown context and are
// interpreted separately).
func (tr *tracker) collectBody(body *ast.BlockStmt, info *funcInfo) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if mu, op := tr.lockOp(call); mu != nil && (op == "Lock" || op == "RLock") {
			info.acquires[mu] = true
			return true
		}
		if fn := tr.staticCallee(call); fn != nil {
			info.callees[fn] = true
		}
		return true
	})
}

// closeAcquires propagates may-acquire sets over the package call graph to
// a fixpoint. A callee's declared preconditions are not acquisitions — the
// caller already holds them.
func (tr *tracker) closeAcquires() {
	for changed := true; changed; {
		changed = false
		for _, info := range tr.infos {
			for callee := range info.callees {
				ci, ok := tr.infos[callee]
				if !ok {
					continue
				}
				for mu := range ci.acquires {
					if !info.acquires[mu] {
						info.acquires[mu] = true
						changed = true
					}
				}
			}
		}
	}
}

// lockOp recognizes mu.Lock()/Unlock()/RLock()/RUnlock() on a tracked
// mutex field, returning the field and the operation name.
func (tr *tracker) lockOp(call *ast.CallExpr) (*types.Var, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, ""
	}
	recv, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	v, ok := tr.pass.TypesInfo.Uses[recv.Sel].(*types.Var)
	if !ok || !tr.mutexes[v] {
		return nil, ""
	}
	return v, op
}

// staticCallee resolves a call to a same-package declared function.
func (tr *tracker) staticCallee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := tr.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() != tr.pass.Pkg {
		return nil
	}
	return fn
}
