// Package hotpathalloc defines an analyzer that statically flags
// allocation-inducing constructs inside functions annotated
// //ccubing:hotpath — the probe, merge-emit and batch-sink paths whose
// AllocsPerRun tests assert zero steady-state allocations at runtime. The
// static check catches the regression at vet time, before a benchmark run
// would.
//
// Flagged constructs: fmt.* calls, make/new, map/slice composite literals
// and &T{} literals, []byte↔string conversions, interface boxing of
// non-pointer-shaped values, closures that capture variables, string
// concatenation, and append whose result is not reassigned to its source
// (the self-append x = append(x, ...) idiom is amortized and allowed).
//
// The check is per-function: calls into other functions are not followed.
// Constructs that are provably allocation-free in context can be excused
// with //ccubing:allow <reason> on the same line or the line above — e.g. a
// non-escaping sort.Search closure, or a pool-miss constructor that runs
// once per steady state. The compiler-elided m[string(b)] map-index
// conversion is recognized and never flagged.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"ccubing/internal/lint/analysis"
	"ccubing/internal/lint/annot"
)

// Analyzer flags allocation-inducing constructs in //ccubing:hotpath
// functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "flag allocating constructs inside //ccubing:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	files := annot.NonTest(pass.Fset, pass.Files)
	allows := annot.CollectAllows(pass.Fset, files)
	for _, pos := range allows.Bad() {
		pass.Reportf(pos, "//ccubing:allow needs a reason")
	}
	c := &checker{pass: pass, allows: allows}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !annot.Has(fd.Doc, "hotpath") {
				continue
			}
			c.check(fd)
		}
	}
	return nil, nil
}

type checker struct {
	pass    *analysis.Pass
	allows  *annot.Allows
	stack   []ast.Node
	declSig *types.Signature // signature of the FuncDecl being checked
}

func (c *checker) report(pos token.Pos, format string, args ...interface{}) {
	if _, ok := c.allows.Allowed(c.pass.Fset, pos); ok {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (c *checker) check(fd *ast.FuncDecl) {
	c.stack = c.stack[:0]
	c.declSig = nil
	if fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		c.declSig, _ = fn.Type().(*types.Signature)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			c.stack = c.stack[:len(c.stack)-1]
			return true
		}
		c.stack = append(c.stack, n)
		c.visit(n)
		return true
	})
}

// parent returns the enclosing node (the stack top is n itself).
func (c *checker) parent() ast.Node {
	if len(c.stack) < 2 {
		return nil
	}
	return c.stack[len(c.stack)-2]
}

func (c *checker) visit(n ast.Node) {
	info := c.pass.TypesInfo
	switch n := n.(type) {
	case *ast.CallExpr:
		c.call(n)
	case *ast.CompositeLit:
		switch info.TypeOf(n).Underlying().(type) {
		case *types.Map:
			c.report(n.Pos(), "hot path: map literal allocates")
		case *types.Slice:
			c.report(n.Pos(), "hot path: slice literal allocates")
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if lit, ok := n.X.(*ast.CompositeLit); ok {
				switch info.TypeOf(lit).Underlying().(type) {
				case *types.Map, *types.Slice:
					// already flagged at the literal itself
				default:
					c.report(n.Pos(), "hot path: address of composite literal allocates")
				}
			}
		}
	case *ast.FuncLit:
		if name := c.captured(n); name != "" {
			c.report(n.Pos(), "hot path: closure captures %s; escaping closures allocate", name)
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if tv, ok := info.Types[n]; ok && tv.Value == nil && isString(tv.Type) {
				c.report(n.Pos(), "hot path: string concatenation allocates")
			}
		}
	case *ast.AssignStmt:
		if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				c.boxing(info.TypeOf(lhs), n.Rhs[i])
			}
		}
	case *ast.ReturnStmt:
		sig := c.enclosingSig(info)
		if sig == nil || len(n.Results) != sig.Results().Len() {
			return
		}
		for i, res := range n.Results {
			c.boxing(sig.Results().At(i).Type(), res)
		}
	}
}

func (c *checker) call(n *ast.CallExpr) {
	info := c.pass.TypesInfo
	if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
		c.conversion(n, tv.Type)
		return
	}
	switch fun := n.Fun.(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.report(n.Pos(), "hot path: make allocates")
			case "new":
				c.report(n.Pos(), "hot path: new allocates")
			case "append":
				if !c.selfAppend(n) {
					c.report(n.Pos(), "hot path: append result not reassigned to its source; growth allocates")
				}
			}
			return
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				c.report(n.Pos(), "hot path: call to fmt.%s allocates", fun.Sel.Name)
				// still check args for boxing below
			}
		}
	}
	sig, ok := info.TypeOf(n.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range n.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if n.Ellipsis != token.NoPos {
				continue // spread of an existing slice: no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		c.boxing(pt, arg)
	}
}

// conversion flags []byte↔string conversions and explicit boxing
// conversions; m[string(b)] map reads are compiler-elided and skipped.
func (c *checker) conversion(n *ast.CallExpr, target types.Type) {
	if len(n.Args) != 1 {
		return
	}
	info := c.pass.TypesInfo
	src := info.TypeOf(n.Args[0])
	switch {
	case isString(target) && isByteOrRuneSlice(src):
		if ix, ok := c.parent().(*ast.IndexExpr); ok && ix.Index == n {
			if _, isMap := info.TypeOf(ix.X).Underlying().(*types.Map); isMap {
				return // m[string(b)]: elided by the compiler
			}
		}
		c.report(n.Pos(), "hot path: conversion to string allocates")
	case isByteOrRuneSlice(target) && isString(src):
		c.report(n.Pos(), "hot path: conversion to %s allocates", types.TypeString(target, nil))
	default:
		c.boxing(target, n.Args[0])
	}
}

// boxing flags a concrete, non-pointer-shaped value converted to an
// interface type: the conversion heap-allocates the boxed copy.
func (c *checker) boxing(target types.Type, val ast.Expr) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[val]
	if !ok || tv.IsNil() {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // already an interface, or pointer-shaped: no allocation
	}
	c.report(val.Pos(), "hot path: interface conversion boxes %s", types.TypeString(tv.Type, types.RelativeTo(c.pass.Pkg)))
}

// selfAppend reports whether the append call is the x = append(x, ...)
// idiom: its result is assigned back to the expression it grows.
func (c *checker) selfAppend(n *ast.CallExpr) bool {
	if len(n.Args) == 0 {
		return false
	}
	as, ok := c.parent().(*ast.AssignStmt)
	if !ok || len(as.Lhs) != len(as.Rhs) {
		return false
	}
	for i, rhs := range as.Rhs {
		if rhs == n {
			return c.exprEq(as.Lhs[i], n.Args[0])
		}
	}
	return false
}

// exprEq compares ident/selector/index paths structurally, resolving
// identifiers to their objects.
func (c *checker) exprEq(a, b ast.Expr) bool {
	info := c.pass.TypesInfo
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && obj(info, a) != nil && obj(info, a) == obj(info, b)
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && info.Uses[a.Sel] == info.Uses[b.Sel] && c.exprEq(a.X, b.X)
	case *ast.IndexExpr:
		b, ok := b.(*ast.IndexExpr)
		return ok && c.exprEq(a.X, b.X) && c.exprEq(a.Index, b.Index)
	}
	return false
}

func obj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// captured returns the name of a variable the literal captures from an
// enclosing function scope ("" if none). Package-level variables are not
// captures.
func (c *checker) captured(lit *ast.FuncLit) string {
	info := c.pass.TypesInfo
	pkgScope := c.pass.Pkg.Scope()
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == pkgScope || v.Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			name = v.Name()
			return false
		}
		return true
	})
	return name
}

// enclosingSig returns the signature of the innermost function literal on
// the walk stack, or of the declared function being checked.
func (c *checker) enclosingSig(info *types.Info) *types.Signature {
	for i := len(c.stack) - 1; i >= 0; i-- {
		if lit, ok := c.stack[i].(*ast.FuncLit); ok {
			sig, _ := info.TypeOf(lit).(*types.Signature)
			return sig
		}
	}
	// stack holds only nodes under fd.Body; recover the FuncDecl signature
	// from the body's position via the declared function object.
	return c.declSig
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
