package hotpathalloc_test

import (
	"strings"
	"testing"

	"ccubing/internal/lint/analysistest"
	"ccubing/internal/lint/hotpathalloc"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", hotpathalloc.Analyzer, "a")
}

// An //ccubing:allow without a reason is itself a finding (and suppresses
// nothing). The diagnostic lands on the comment line, which a fixture
// // want cannot share, so this case is asserted directly.
func TestAllowWithoutReason(t *testing.T) {
	src := `package p

//ccubing:hotpath
func f() []int {
	//ccubing:allow
	return make([]int, 4)
}
`
	diags := analysistest.Diagnostics(t, hotpathalloc.Analyzer, src)
	var gotBad, gotMake bool
	for _, d := range diags {
		if strings.Contains(d.Message, "needs a reason") {
			gotBad = true
		}
		if strings.Contains(d.Message, "make allocates") {
			gotMake = true
		}
	}
	if !gotBad {
		t.Errorf("expected a 'needs a reason' finding, got %v", diags)
	}
	if !gotMake {
		t.Errorf("reasonless allow must not suppress the finding it precedes, got %v", diags)
	}
}
