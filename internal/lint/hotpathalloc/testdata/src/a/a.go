// Package a is the hotpathalloc fixture: every construct the analyzer must
// flag inside a //ccubing:hotpath function, plus the idioms it must not.
package a

import "fmt"

type pair struct{ a, b int }

func sink(v interface{}) {}

func use(v interface{}) int { return 0 }

//ccubing:hotpath
func hot(m map[string]int, key []byte, xs []int, x int, s string) int {
	fmt.Println()            // want `hot path: call to fmt\.Println allocates`
	mm := make(map[int]int)  // want `hot path: make allocates`
	bb := make([]int, 4)     // want `hot path: make allocates`
	p := new(pair)           // want `hot path: new allocates`
	lit := map[int]int{1: 2} // want `hot path: map literal allocates`
	sl := []int{1, 2}        // want `hot path: slice literal allocates`
	pp := &pair{a: 1}        // want `hot path: address of composite literal allocates`
	ys := append(xs, x)      // want `hot path: append result not reassigned to its source`
	str := string(key)       // want `hot path: conversion to string allocates`
	raw := []byte(s)         // want `hot path: conversion to \[\]byte allocates`
	cat := s + str           // want `hot path: string concatenation allocates`
	var i interface{}
	i = x                        // want `hot path: interface conversion boxes int`
	sink(x)                      // want `hot path: interface conversion boxes int`
	f := func() int { return x } // want `hot path: closure captures x`
	return mm[0] + bb[0] + p.a + lit[1] + sl[0] + pp.b + ys[0] + len(str) + len(raw) + len(cat) + f() + use(i)
}

//ccubing:hotpath
func boxedReturn(x int) interface{} {
	return x // want `hot path: interface conversion boxes int`
}

//ccubing:hotpath
func okPatterns(m map[string]int, key []byte, xs []int, x int) int {
	xs = append(xs, x)                    // self-append: amortized growth, allowed
	n := m[string(key)]                   // compiler-elided map-index conversion
	f := func(a int) int { return a + 1 } // captures nothing
	var p *pair
	sink(p) // pointer-shaped: conversion to interface does not allocate
	//ccubing:allow one-time pool-miss constructor, zero steady-state allocs
	buf := make([]int, 8)
	spare := make([]int, 8) //ccubing:allow same-line escape hatch form
	return n + xs[0] + f(x) + buf[0] + spare[0]
}

// cold is unannotated: the same constructs are fine outside hot paths.
func cold(xs []int, x int) []int {
	ys := append(xs, x)
	m := map[int]int{x: x}
	_ = fmt.Sprint(len(m))
	return append(ys, len(m))
}
