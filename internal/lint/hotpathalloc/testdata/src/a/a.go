// Package a is the hotpathalloc fixture: every construct the analyzer must
// flag inside a //ccubing:hotpath function, plus the idioms it must not.
package a

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
	"unsafe"
)

type pair struct{ a, b int }

func sink(v interface{}) {}

func use(v interface{}) int { return 0 }

//ccubing:hotpath
func hot(m map[string]int, key []byte, xs []int, x int, s string) int {
	fmt.Println()            // want `hot path: call to fmt\.Println allocates`
	mm := make(map[int]int)  // want `hot path: make allocates`
	bb := make([]int, 4)     // want `hot path: make allocates`
	p := new(pair)           // want `hot path: new allocates`
	lit := map[int]int{1: 2} // want `hot path: map literal allocates`
	sl := []int{1, 2}        // want `hot path: slice literal allocates`
	pp := &pair{a: 1}        // want `hot path: address of composite literal allocates`
	ys := append(xs, x)      // want `hot path: append result not reassigned to its source`
	str := string(key)       // want `hot path: conversion to string allocates`
	raw := []byte(s)         // want `hot path: conversion to \[\]byte allocates`
	cat := s + str           // want `hot path: string concatenation allocates`
	var i interface{}
	i = x                        // want `hot path: interface conversion boxes int`
	sink(x)                      // want `hot path: interface conversion boxes int`
	f := func() int { return x } // want `hot path: closure captures x`
	return mm[0] + bb[0] + p.a + lit[1] + sl[0] + pp.b + ys[0] + len(str) + len(raw) + len(cat) + f() + use(i)
}

//ccubing:hotpath
func boxedReturn(x int) interface{} {
	return x // want `hot path: interface conversion boxes int`
}

//ccubing:hotpath
func okPatterns(m map[string]int, key []byte, xs []int, x int) int {
	xs = append(xs, x)                    // self-append: amortized growth, allowed
	n := m[string(key)]                   // compiler-elided map-index conversion
	f := func(a int) int { return a + 1 } // captures nothing
	var p *pair
	sink(p) // pointer-shaped: conversion to interface does not allocate
	//ccubing:allow one-time pool-miss constructor, zero steady-state allocs
	buf := make([]int, 8)
	spare := make([]int, 8) //ccubing:allow same-line escape hatch form
	return n + xs[0] + f(x) + buf[0] + spare[0]
}

// cold is unannotated: the same constructs are fine outside hot paths.
func cold(xs []int, x int) []int {
	ys := append(xs, x)
	m := map[int]int{x: x}
	_ = fmt.Sprint(len(m))
	return append(ys, len(m))
}

// --- obs-style metric recording ---
//
// The shapes below mirror internal/obs: striped atomic counters picked by a
// stack-address hash, and histogram Observe as bit-length bucket index plus
// two atomic adds. All of it must pass untouched — these are the recording
// calls that sit on the probe/scatter path.

type recStripe struct {
	n atomic.Int64
	_ [56]byte
}

type recCounter struct {
	s [8]recStripe
}

type recHist struct {
	counts [23]atomic.Int64
	sum    atomic.Int64
}

//ccubing:hotpath
func recStripeIndex() uint32 {
	var b byte
	p := uintptr(unsafe.Pointer(&b)) // uintptr conversion: address does not escape
	return uint32((uint64(p) * 0x9e3779b97f4a7c15) >> 61)
}

//ccubing:hotpath
func (c *recCounter) add(n int64) {
	c.s[recStripeIndex()].n.Add(n) // atomic add through a stripe pointer
}

//ccubing:hotpath
func recBucketIndex(d time.Duration) int {
	if d <= time.Microsecond {
		return 0
	}
	us := (uint64(d) + 999) / 1000
	i := bits.Len64(us - 1)
	if i >= 22 {
		return 22
	}
	return i
}

//ccubing:hotpath
func (h *recHist) observe(d time.Duration) {
	h.counts[recBucketIndex(d)].Add(1)
	h.sum.Add(int64(d))
}

//ccubing:hotpath
func recordProbe(c *recCounter, h *recHist, start time.Time) {
	c.add(1)
	h.observe(time.Since(start)) // time.Since is alloc-free
}

// recBoxed shows the recording path's one forbidden temptation: formatting a
// duration boxes it.
//
//ccubing:hotpath
func recBoxed(h *recHist, d time.Duration) {
	h.observe(d)
	sink(d) // want `hot path: interface conversion boxes time\.Duration`
}

// --- measure-vector combine ---
//
// The shapes below mirror the sink batch-merge path: a cell carrying a count
// and a stored measure aggregate, combined across shards by a kind switch
// (add for sum/avg, extremum for min/max) and appended into a reused output
// vector. The combine itself must pass untouched; materializing per-combine
// scratch must not.

type mvKind uint8

const (
	mvSum mvKind = iota
	mvMin
	mvMax
)

type mvCell struct {
	count int64
	aux   float64
}

//ccubing:hotpath
func (c *mvCell) combine(src mvCell, kind mvKind) {
	c.count += src.count
	switch kind {
	case mvMin:
		if src.aux < c.aux {
			c.aux = src.aux
		}
	case mvMax:
		if src.aux > c.aux {
			c.aux = src.aux
		}
	default: // sum and avg both carry the running sum
		c.aux += src.aux
	}
}

//ccubing:hotpath
func mvMerge(dst []mvCell, a, b []mvCell, kind mvKind) []mvCell {
	for i := range a {
		cell := a[i]
		cell.combine(b[i], kind)
		dst = append(dst, cell) // self-append: reused output vector
	}
	return dst
}

// mvMergeFresh is the forbidden variant: building per-merge scratch and
// reporting through fmt from the combine loop.
//
//ccubing:hotpath
func mvMergeFresh(a, b []mvCell, kind mvKind) []mvCell {
	out := make([]mvCell, 0, len(a)) // want `hot path: make allocates`
	for i := range a {
		cell := a[i]
		cell.combine(b[i], kind)
		fmt.Sprint(cell.count) // want `hot path: call to fmt\.Sprint allocates` `hot path: interface conversion boxes int64`
		out = append(out, cell)
	}
	return out
}
