// Package poolescape defines an analyzer that flags sync.Pool-backed
// values escaping the function that returns them to the pool. The repo's
// hot paths reuse pooled scratch (probe scratch in internal/cubestore,
// vals scratch in internal/parallel, merge workers in internal/sink); a
// pooled buffer that leaks into a query result is recycled under the
// caller's feet on the next probe — the worst kind of corruption, visible
// only under load.
//
// The analysis is per-package and summary-based. For every function it
// computes, to a fixpoint, which results derive from a pool (getter
// functions like getScratch are the pool's designed API and are fine) and
// which parameters flow into Pool.Put (releaser functions like putScratch
// or MergeWorker.Close). In functions that release pool-derived values it
// flags the escapes: returning a pool-tainted value, storing one into
// memory reachable outside the function (globals, fields of parameters or
// receivers), or sending one on a channel.
//
// Taint follows assignments, field reads of tainted bases, sub-slices,
// &x[i], type assertions and append's first argument; it is deliberately
// dropped by element reads (sc.cands[i] points at store data, not pool
// data), scalar copies and string conversions. Function literals are not
// analyzed: pooled scratch captured by worker closures is released after
// the pool's Wait barrier, which a per-function analysis cannot see.
package poolescape

import (
	"go/ast"
	"go/token"
	"go/types"

	"ccubing/internal/lint/analysis"
	"ccubing/internal/lint/annot"
)

// Analyzer flags pooled values escaping functions that Put them back.
var Analyzer = &analysis.Analyzer{
	Name: "poolescape",
	Doc:  "flag sync.Pool values escaping via returns, stores or sends",
	Run:  run,
}

// poolBit marks pool-derived taint; params of the function under analysis
// occupy the following bits.
const poolBit uint64 = 1

func paramBit(i int) uint64 { return 1 << (uint(i) + 1) }

// summary is the cross-function interface of one declared function.
type summary struct {
	params  []*types.Var // receiver (if any) then parameters
	results []uint64     // taint mask per result: poolBit and/or param bits
	release uint64       // mask of inputs (poolBit/params) flowing into Put
}

func run(pass *analysis.Pass) (interface{}, error) {
	files := annot.NonTest(pass.Fset, pass.Files)
	allows := annot.CollectAllows(pass.Fset, files)
	for _, pos := range allows.Bad() {
		pass.Reportf(pos, "//ccubing:allow needs a reason")
	}

	pe := &analyzer{
		pass:      pass,
		allows:    allows,
		summaries: map[*types.Func]*summary{},
	}
	var decls []*ast.FuncDecl
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	// Summary fixpoint: getters may call getters, releasers call releasers.
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			if pe.summarize(fd) {
				changed = true
			}
		}
	}
	for _, fd := range decls {
		pe.check(fd)
	}
	return nil, nil
}

type analyzer struct {
	pass      *analysis.Pass
	allows    *annot.Allows
	summaries map[*types.Func]*summary
}

func (pe *analyzer) report(pos token.Pos, format string, args ...interface{}) {
	if _, ok := pe.allows.Allowed(pe.pass.Fset, pos); ok {
		return
	}
	pe.pass.Reportf(pos, format, args...)
}

func (pe *analyzer) fn(fd *ast.FuncDecl) *types.Func {
	f, _ := pe.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	return f
}

// inputs returns the receiver-then-params variable list of a declaration.
func inputs(info *types.Info, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					out = append(out, v)
				}
			}
		}
	}
	if fd.Recv != nil {
		collect(fd.Recv)
	}
	collect(fd.Type.Params)
	return out
}

// summarize recomputes fd's summary, reporting whether it changed.
func (pe *analyzer) summarize(fd *ast.FuncDecl) bool {
	fn := pe.fn(fd)
	if fn == nil {
		return false
	}
	ft := pe.newTaint(fd)
	ft.propagate()

	sig := fn.Type().(*types.Signature)
	sum := &summary{
		params:  ft.params,
		results: make([]uint64, sig.Results().Len()),
		release: ft.released(),
	}
	for _, ret := range ft.returns() {
		if len(ret.Results) == 0 {
			// Naked return: named results carry their variable taint.
			for i := 0; i < sig.Results().Len() && i < len(sum.results); i++ {
				sum.results[i] |= ft.vars[sig.Results().At(i)]
			}
			continue
		}
		if len(ret.Results) == len(sum.results) {
			for i, e := range ret.Results {
				sum.results[i] |= ft.taintOf(e)
			}
		} else if len(ret.Results) == 1 {
			// return f() forwarding a tuple.
			if call, ok := ret.Results[0].(*ast.CallExpr); ok {
				for i := range sum.results {
					sum.results[i] |= ft.callResult(call, i)
				}
			}
		}
	}

	old := pe.summaries[fn]
	pe.summaries[fn] = sum
	return old == nil || !equal(old, sum)
}

func equal(a, b *summary) bool {
	if a.release != b.release || len(a.results) != len(b.results) {
		return false
	}
	for i := range a.results {
		if a.results[i] != b.results[i] {
			return false
		}
	}
	return true
}

// check flags escapes in functions that release pool-derived values.
func (pe *analyzer) check(fd *ast.FuncDecl) {
	ft := pe.newTaint(fd)
	ft.propagate()
	if ft.released()&poolBit == 0 {
		return // not a releaser: getters hand pooled values out by design
	}
	name := fd.Name.Name

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				if ft.taintOf(e)&poolBit != 0 {
					pe.report(e.Pos(), "%s returns a pooled value it also returns to the pool", name)
				}
			}
		case *ast.SendStmt:
			if ft.taintOf(n.Value)&poolBit != 0 {
				pe.report(n.Value.Pos(), "%s sends a pooled value it also returns to the pool", name)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var taint uint64
				switch {
				case len(n.Rhs) == 1 && len(n.Lhs) > 1:
					if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
						taint = ft.callResult(call, i)
					}
				case i < len(n.Rhs):
					taint = ft.taintOf(n.Rhs[i])
				}
				if taint&poolBit == 0 {
					continue
				}
				if root, local := ft.rootOf(lhs); root != nil && !local {
					pe.report(lhs.Pos(), "%s stores a pooled value into %s, which outlives its return to the pool",
						name, root.Name())
				}
			}
		}
		return true
	})
}
