package poolescape_test

import (
	"testing"

	"ccubing/internal/lint/analysistest"
	"ccubing/internal/lint/poolescape"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", poolescape.Analyzer, "a")
}
