// Package a is the poolescape fixture, modeled on cubestore's pooled probe
// scratch: getter/releaser helpers around a sync.Pool, correct copy-out
// users, and the escape patterns the analyzer must catch.
package a

import "sync"

type group struct{ n int }

type scratch struct {
	key   []uint16
	cands []*group
}

type store struct {
	pool   sync.Pool
	leak   []uint16
	groups []*group
}

func (st *store) getScratch() *scratch {
	v := st.pool.Get()
	if v == nil {
		return &scratch{key: make([]uint16, 0, 8)}
	}
	return v.(*scratch) // a getter hands pooled values out by design
}

func (st *store) putScratch(sc *scratch) {
	st.pool.Put(sc)
}

// query copies out of the scratch before releasing it: the correct shape.
func (st *store) query(q []uint16) []uint16 {
	sc := st.getScratch()
	sc.key = append(sc.key[:0], q...)
	out := make([]uint16, len(sc.key))
	copy(out, sc.key)
	st.putScratch(sc)
	return out
}

func (st *store) leakReturn(q []uint16) []uint16 {
	sc := st.getScratch()
	sc.key = append(sc.key[:0], q...)
	defer st.putScratch(sc)
	return sc.key // want `leakReturn returns a pooled value it also returns to the pool`
}

func (st *store) leakSub(q []uint16) []uint16 {
	sc := st.getScratch()
	sc.key = append(sc.key[:0], q...)
	res := sc.key[:1]
	st.putScratch(sc)
	return res // want `leakSub returns a pooled value it also returns to the pool`
}

func (st *store) leakStore() {
	sc := st.getScratch()
	st.leak = sc.key // want `leakStore stores a pooled value into st`
	st.putScratch(sc)
}

func (st *store) leakChan(ch chan []uint16) {
	sc := st.getScratch()
	ch <- sc.key // want `leakChan sends a pooled value it also returns to the pool`
	st.putScratch(sc)
}

// lookup returns an element read off the scratch: *group points at store
// data, not pooled memory, so this is clean.
func (st *store) lookup() *group {
	sc := st.getScratch()
	sc.cands = append(sc.cands[:0], st.groups...)
	g := sc.cands[0]
	st.putScratch(sc)
	return g
}

// copyOut launders through an append to a clean destination.
func (st *store) copyOut(q []uint16) []uint16 {
	sc := st.getScratch()
	sc.key = append(sc.key[:0], q...)
	var out []uint16
	out = append(out, sc.key...)
	st.putScratch(sc)
	return out
}

var bufPool = sync.Pool{New: func() any { return new(scratch) }}

func direct() *scratch {
	return bufPool.Get().(*scratch)
}

func release(sc *scratch) {
	bufPool.Put(sc)
}

// user releases through the helper and leaks nothing.
func user() int {
	sc := direct()
	n := len(sc.key)
	release(sc)
	return n
}

// badUser obtains and releases through helpers; the leak is still caught
// via the function summaries.
func badUser() []uint16 {
	sc := direct()
	defer release(sc)
	return sc.key // want `badUser returns a pooled value it also returns to the pool`
}

func allowed() []uint16 {
	sc := direct()
	defer release(sc)
	//ccubing:allow single-threaded startup path; caller copies before any reuse
	return sc.key
}
