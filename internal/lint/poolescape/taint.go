package poolescape

import (
	"go/ast"
	"go/types"
)

// funcTaint is the intra-function taint state: which variables carry
// pool-derived (poolBit) or parameter-derived (paramBit) references.
type funcTaint struct {
	pe     *analyzer
	fd     *ast.FuncDecl
	params []*types.Var
	vars   map[*types.Var]uint64
}

func (pe *analyzer) newTaint(fd *ast.FuncDecl) *funcTaint {
	ft := &funcTaint{pe: pe, fd: fd, vars: map[*types.Var]uint64{}}
	ft.params = inputs(pe.pass.TypesInfo, fd)
	for i, v := range ft.params {
		ft.vars[v] = paramBit(i)
	}
	return ft
}

// propagate iterates the body's assignments until the variable taints
// stop changing (the iteration cap only guards pathological inputs).
func (ft *funcTaint) propagate() {
	for range 32 {
		if !ft.sweep() {
			return
		}
	}
}

func (ft *funcTaint) sweep() bool {
	changed := false
	add := func(lhs ast.Expr, taint uint64) {
		if taint == 0 {
			return
		}
		root, local := ft.rootOf(lhs)
		if root == nil {
			return
		}
		if _, isIdent := lhs.(*ast.Ident); !isIdent && !local {
			return // store into non-local memory: a sink, not a propagation
		}
		if ft.vars[root]&taint != taint {
			ft.vars[root] |= taint
			changed = true
		}
	}
	assign := func(lhs, rhs []ast.Expr) {
		if len(rhs) == 1 && len(lhs) > 1 {
			switch r := rhs[0].(type) {
			case *ast.CallExpr:
				for i, l := range lhs {
					add(l, ft.callResult(r, i))
				}
			case *ast.TypeAssertExpr:
				add(lhs[0], ft.taintOf(r.X))
			case *ast.IndexExpr:
				// v, ok := m[k]: element reads launder taint.
			}
			return
		}
		for i, l := range lhs {
			if i < len(rhs) {
				add(l, ft.taintOf(rhs[i]))
			}
		}
	}
	ast.Inspect(ft.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			assign(n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			var lhs []ast.Expr
			for _, name := range n.Names {
				lhs = append(lhs, name)
			}
			assign(lhs, n.Values)
		}
		return true
	})
	return changed
}

// taintOf computes the taint mask of an expression under the current
// variable state.
func (ft *funcTaint) taintOf(e ast.Expr) uint64 {
	info := ft.pe.pass.TypesInfo
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := obj(info, e).(*types.Var); ok {
			return ft.vars[v]
		}
	case *ast.ParenExpr:
		return ft.taintOf(e.X)
	case *ast.SelectorExpr:
		// A field read of a tainted base carries the reference.
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			return ft.taintOf(e.X)
		}
	case *ast.SliceExpr:
		return ft.taintOf(e.X) // sub-slices alias the pooled backing array
	case *ast.StarExpr:
		return ft.taintOf(e.X)
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return ft.taintOf(e.X) // &sc.buf, &x[i]: aliases pooled memory
		}
	case *ast.TypeAssertExpr:
		return ft.taintOf(e.X)
	case *ast.CompositeLit:
		var mask uint64
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			mask |= ft.taintOf(el)
		}
		return mask
	case *ast.CallExpr:
		return ft.callResult(e, 0)
	}
	// Index-expression element reads, scalar copies, binary expressions and
	// conversions to value types all launder taint.
	return 0
}

// callResult computes the taint of result i of a call: Pool.Get is the
// taint source; same-package callees translate their summary through the
// call-site arguments; conversions keep taint only for aliasing targets.
func (ft *funcTaint) callResult(call *ast.CallExpr, i int) uint64 {
	info := ft.pe.pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Pointer:
			if len(call.Args) == 1 {
				return ft.taintOf(call.Args[0]) // aliasing conversion
			}
		}
		return 0
	}
	if op, _ := ft.poolOp(call); op == "Get" && i == 0 {
		return poolBit
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" && len(call.Args) > 0 {
				// Growth may reallocate but may also write in place: the
				// result can alias the first argument's backing array.
				return ft.taintOf(call.Args[0])
			}
			return 0
		}
	}
	fn := ft.staticCallee(call)
	if fn == nil {
		return 0
	}
	sum := ft.pe.summaries[fn]
	if sum == nil || i >= len(sum.results) {
		return 0
	}
	mask := sum.results[i]
	out := mask & poolBit
	args := ft.callArgs(call, fn)
	for j := range sum.params {
		if mask&paramBit(j) != 0 && j < len(args) && args[j] != nil {
			out |= ft.taintOf(args[j])
		}
	}
	return out
}

// released computes the mask of inputs this function returns to a pool,
// directly via Pool.Put or through a releaser callee.
func (ft *funcTaint) released() uint64 {
	var mask uint64
	ast.Inspect(ft.fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, _ := ft.poolOp(call); op == "Put" && len(call.Args) == 1 {
			mask |= ft.taintOf(call.Args[0])
			return true
		}
		fn := ft.staticCallee(call)
		if fn == nil {
			return true
		}
		sum := ft.pe.summaries[fn]
		if sum == nil || sum.release == 0 {
			return true
		}
		args := ft.callArgs(call, fn)
		for j := range sum.params {
			if sum.release&paramBit(j) != 0 && j < len(args) && args[j] != nil {
				mask |= ft.taintOf(args[j])
			}
		}
		return true
	})
	return mask
}

func (ft *funcTaint) returns() []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	ast.Inspect(ft.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, n)
		}
		return true
	})
	return out
}

// poolOp recognizes Get/Put method calls on a sync.Pool value (a struct
// field, package-level variable, or pointer to either).
func (ft *funcTaint) poolOp(call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	if sel.Sel.Name != "Get" && sel.Sel.Name != "Put" {
		return "", nil
	}
	t := ft.pe.pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return "", nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", nil
	}
	if named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "Pool" {
		return "", nil
	}
	return sel.Sel.Name, sel.X
}

// staticCallee resolves a call to a same-package declared function.
func (ft *funcTaint) staticCallee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := ft.pe.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() != ft.pe.pass.Pkg {
		return nil
	}
	return fn
}

// callArgs lines the call site's argument expressions up with the callee's
// receiver-then-params input list.
func (ft *funcTaint) callArgs(call *ast.CallExpr, fn *types.Func) []ast.Expr {
	var args []ast.Expr
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			args = append(args, sel.X)
		} else {
			args = append(args, nil)
		}
	}
	return append(args, call.Args...)
}

// rootOf walks to the root identifier of an lvalue path and reports
// whether it is a function-local variable (declared inside the body, not a
// parameter).
func (ft *funcTaint) rootOf(e ast.Expr) (*types.Var, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			v, ok := obj(ft.pe.pass.TypesInfo, x).(*types.Var)
			if !ok {
				return nil, false
			}
			body := ft.fd.Body
			return v, v.Pos() >= body.Pos() && v.Pos() <= body.End()
		default:
			return nil, false
		}
	}
}

func obj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}
