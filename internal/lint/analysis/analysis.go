// Package analysis is a minimal, stdlib-only subset of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check over one
// type-checked package, and a Pass hands it the syntax, type information and
// a Report callback. The subset exists because this module is built without
// network access to the x/tools module; the shapes mirror the upstream API
// closely enough that the analyzers under internal/lint could be ported to
// the real framework by swapping the import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags; by convention a
	// short lowercase identifier.
	Name string
	// Doc is the help text: a one-line summary, a blank line, then detail.
	Doc string
	// Run applies the check to one package. The result value is unused by
	// this subset (upstream threads it to dependent analyzers) but kept for
	// signature compatibility.
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass is the interface between the driver and one analyzer run on one
// package: inputs plus the Report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// NewInfo returns a types.Info with every map the analyzers consume
// allocated; drivers pass it to types.Config.Check.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
