// Package annot parses the //ccubing:* source annotations shared by the
// cclint analyzers:
//
//	//ccubing:hotpath              function doc: steady-state allocation-free path
//	//ccubing:allow <reason>       same line or line above a finding: suppress it
//	//ccubing:lockorder a < b      declares a must be acquired before b
//	//ccubing:requires mu[, mu2]   function doc: caller must hold mu at entry
//	//ccubing:releases mu          function doc: function releases mu before returning
//	//ccubing:freeze               struct doc: fields frozen outside mutator files
//	//ccubing:mutates Type         file-scope: this file may mutate frozen Type
//
// Lock annotations also recognize the repo's prose conventions: a mutex
// field comment containing "guards ..." marks the mutex as tracked and lists
// the fields it protects, and a function doc line "Caller holds X [and Y]"
// is equivalent to //ccubing:requires X[, Y].
package annot

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Prefix is the annotation namespace.
const Prefix = "//ccubing:"

// Directive returns the arguments of every "//ccubing:<name> args" line in
// the comment group (nil-safe).
func Directive(cg *ast.CommentGroup, name string) []string {
	if cg == nil {
		return nil
	}
	var out []string
	marker := Prefix + name
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == marker {
			out = append(out, "")
			continue
		}
		if rest, ok := strings.CutPrefix(text, marker+" "); ok {
			out = append(out, strings.TrimSpace(rest))
		}
	}
	return out
}

// Has reports whether the comment group carries the named directive.
func Has(cg *ast.CommentGroup, name string) bool {
	return len(Directive(cg, name)) > 0
}

// Allows indexes every //ccubing:allow comment of a package by file and
// line. A finding is suppressed when an allow sits on the finding's line
// (trailing comment) or on the line directly above.
type Allows struct {
	reasons map[string]map[int]string // filename -> line -> reason
	bad     []token.Pos               // allows with an empty reason
}

// CollectAllows scans every comment of files.
func CollectAllows(fset *token.FileSet, files []*ast.File) *Allows {
	a := &Allows{reasons: make(map[string]map[int]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				rest, ok := strings.CutPrefix(text, Prefix+"allow")
				if !ok {
					continue
				}
				if rest != "" && !strings.HasPrefix(rest, " ") {
					continue // a different directive sharing the prefix
				}
				reason := strings.TrimSpace(rest)
				pos := fset.Position(c.Pos())
				if reason == "" {
					a.bad = append(a.bad, c.Pos())
					continue
				}
				lines := a.reasons[pos.Filename]
				if lines == nil {
					lines = make(map[int]string)
					a.reasons[pos.Filename] = lines
				}
				lines[pos.Line] = reason
			}
		}
	}
	return a
}

// Allowed reports whether a finding at pos is suppressed, and by which
// reason.
func (a *Allows) Allowed(fset *token.FileSet, pos token.Pos) (string, bool) {
	p := fset.Position(pos)
	lines := a.reasons[p.Filename]
	if lines == nil {
		return "", false
	}
	if r, ok := lines[p.Line]; ok {
		return r, true
	}
	if r, ok := lines[p.Line-1]; ok {
		return r, true
	}
	return "", false
}

// Bad returns the positions of allow annotations missing a reason; every
// analyzer reports them (the driver deduplicates identical diagnostics).
func (a *Allows) Bad() []token.Pos { return a.bad }

// NonTest filters out _test.go files: the concurrency and hot-path
// invariants the analyzers enforce are production-path contracts, and test
// helpers legitimately reach into unexported state single-threaded.
func NonTest(fset *token.FileSet, files []*ast.File) []*ast.File {
	out := files[:0:0]
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// callerHoldsRE matches the repo's prose convention for lock preconditions,
// e.g. "Caller holds flushMu and appendMu." — but not "must not hold".
var callerHoldsRE = regexp.MustCompile(`[Cc]aller (?:must\s+hold|holds)\s+(\w+(?:(?:,?\s+and\s+|,\s+)\w+)*)`)

// CallerHolds extracts mutex names from the prose convention in a function
// doc. Names are candidates only; callers filter them against the tracked
// mutex fields (prose like "holds appendMu, which is released" captures
// trailing words that are not mutexes).
func CallerHolds(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var out []string
	for _, m := range callerHoldsRE.FindAllStringSubmatch(doc.Text(), -1) {
		for _, name := range splitNames(m[1]) {
			out = append(out, name)
		}
	}
	return out
}

// SplitNames splits a directive argument list: "a, b and c" -> a b c.
func SplitNames(args string) []string { return splitNames(args) }

func splitNames(s string) []string {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t'
	})
	out := fields[:0]
	for _, f := range fields {
		if f == "and" || f == "" {
			continue
		}
		out = append(out, f)
	}
	return out
}

// FileHas reports whether any comment in the file carries the directive with
// the given argument (file-scope directives like //ccubing:mutates Store).
func FileHas(f *ast.File, name, arg string) bool {
	for _, cg := range f.Comments {
		for _, got := range Directive(cg, name) {
			if got == arg {
				return true
			}
		}
	}
	return false
}
