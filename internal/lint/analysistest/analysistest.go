// Package analysistest runs an analyzer over a fixture package and checks
// its diagnostics against // want "regexp" comments, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract: every diagnostic
// must be matched by a want on its line, and every want must be matched by
// a diagnostic.
//
// Fixtures live under <testdata>/src/<pkg>/*.go. Their imports are resolved
// from gc export data produced by `go list -export`, so fixtures may import
// the standard library but nothing else.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ccubing/internal/lint/analysis"
	"ccubing/internal/lint/load"
)

// want is one expectation: a diagnostic on this line matching re.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run applies a to the fixture package at <testdata>/src/<pkg> and reports
// every mismatch between diagnostics and // want comments as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	filenames, err := load.Dir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	if len(filenames) == 0 {
		t.Fatalf("analysistest: no fixture files in %s", dir)
	}

	fset := token.NewFileSet()
	files, err := load.Parse(fset, filenames)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	imp, err := fixtureImporter(fset, files)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	checked, err := load.CheckFiles(fset, pkg, files, imp)
	if err != nil {
		t.Fatalf("analysistest: type-checking %s: %v", dir, err)
	}

	wants, err := parseWants(fset, files)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     checked.Files,
		Pkg:       checked.Pkg,
		TypesInfo: checked.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// Diagnostics type-checks one in-memory source file (standard-library
// imports only) and returns the analyzer's raw diagnostics, for cases a
// fixture's // want comments cannot express — e.g. findings positioned on a
// comment line.
func Diagnostics(t *testing.T, a *analysis.Analyzer, src string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	files := []*ast.File{f}
	imp, err := fixtureImporter(fset, files)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	checked, err := load.CheckFiles(fset, f.Name.Name, files, imp)
	if err != nil {
		t.Fatalf("analysistest: type-checking: %v", err)
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     checked.Files,
		Pkg:       checked.Pkg,
		TypesInfo: checked.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: %s: %v", a.Name, err)
	}
	return diags
}

// claim marks the first unmatched want on (file, line) whose regexp matches
// msg, reporting whether one existed.
func claim(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// fixtureImporter resolves the fixture's (standard-library) imports via go
// list -export. A fixture with no imports needs no subprocess at all.
func fixtureImporter(fset *token.FileSet, files []*ast.File) (types.Importer, error) {
	seen := map[string]bool{}
	var paths []string
	for _, f := range files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, err
			}
			if path != "unsafe" && !seen[path] {
				seen[path] = true
				paths = append(paths, path)
			}
		}
	}
	exports := map[string]string{}
	if len(paths) > 0 {
		pkgs, err := load.GoList("", paths...)
		if err != nil {
			return nil, err
		}
		exports = load.Exports(pkgs)
	}
	return load.Importer(fset, exports, nil), nil
}

// wantRE matches the comment marker; the quoted regexps follow.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)

func parseWants(fset *token.FileSet, files []*ast.File) ([]*want, error) {
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					if rest[0] != '"' && rest[0] != '`' {
						return nil, fmt.Errorf("%s:%d: malformed want: %s", pos.Filename, pos.Line, c.Text)
					}
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: malformed want %q: %v", pos.Filename, pos.Line, rest, err)
					}
					expr, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return wants, nil
}
