// Package multiway implements array-based simultaneous aggregation in the
// style of Zhao, Deshpande & Naughton (SIGMOD'97): the dense-subspace engine
// MM-Cubing runs inside (paper Sec. 2.1.3, 3.3).
//
// A Space is a small multidimensional array over the dense values of a few
// dimensions, with one extra "other" bucket per dimension for every value
// outside the dense set. The base cuboid array is filled from tuples; every
// coarser cuboid is computed from its designated parent (the parent reached
// by re-adding the cheapest missing dimension) by summing out one dimension,
// so each array cell is touched a bounded number of times. Count and, when
// requested, the closedness measure (Representative Tuple ID + Closed Mask)
// aggregate identically.
package multiway

import (
	"fmt"

	"ccubing/internal/core"
)

// Dim describes one array dimension of a dense space.
type Dim struct {
	// D is the dimension's index in the base relation.
	D int
	// Vals lists the dense values, ascending; array coordinate i stands for
	// Vals[i] and coordinate len(Vals) is the "other" bucket.
	Vals []core.Value
}

// Space is a dense aggregation space. Build one with NewSpace, fill it with
// Add, then walk the cuboid lattice with Process.
type Space struct {
	dims    []Dim
	sizes   []int // len(Vals)+1 per dim
	strides []int
	total   int

	closed bool
	cols   core.Columns
	check  core.Mask

	kind  core.MeasureKind
	auxIn []float64 // per-tuple measure input; nil when kind is MeasureNone

	counts []int64
	cls    []core.Closedness
	aux    []float64 // per-cell stored measure aggregate; nil without a measure
}

// NewSpace allocates a dense space over the given dimensions, whose Vals
// must be sorted ascending (coordinates are resolved by binary search, so
// construction cost is independent of the relation's cardinalities). cards
// is retained in the signature for validation only. When closed is true the
// space also aggregates closedness measures, using cols for representative-
// value comparisons. The product of (len(Vals)+1) must stay within maxCells.
// SetMeasure optionally attaches a complex measure before the first Add.
func NewSpace(dims []Dim, cards []int, closed bool, cols core.Columns, maxCells int) (*Space, error) {
	s := &Space{dims: dims, closed: closed, cols: cols, check: ^core.Mask(0)}
	total := 1
	for _, dm := range dims {
		if len(dm.Vals) == 0 {
			return nil, fmt.Errorf("multiway: dimension %d has no dense values", dm.D)
		}
		for i := 1; i < len(dm.Vals); i++ {
			if dm.Vals[i-1] >= dm.Vals[i] {
				return nil, fmt.Errorf("multiway: dimension %d dense values not sorted", dm.D)
			}
		}
		if last := dm.Vals[len(dm.Vals)-1]; int(last) >= cards[dm.D] {
			return nil, fmt.Errorf("multiway: dimension %d dense value %d outside cardinality %d", dm.D, last, cards[dm.D])
		}
		size := len(dm.Vals) + 1
		if total > maxCells/size {
			return nil, fmt.Errorf("multiway: space exceeds %d cells", maxCells)
		}
		s.strides = append(s.strides, total)
		total *= size
		s.sizes = append(s.sizes, size)
	}
	s.total = total
	s.counts = make([]int64, total)
	if closed {
		s.cls = make([]core.Closedness, total)
		for i := range s.cls {
			s.cls[i] = core.EmptyClosedness()
		}
	}
	return s, nil
}

// SetMeasure attaches a per-tuple measure input whose stored aggregate
// (core.MeasureAgg.Stored semantics: sum for sum/avg, extremum for min/max)
// is computed per array cell alongside count and handed to Emit. Must be
// called before the first Add.
func (s *Space) SetMeasure(kind core.MeasureKind, auxIn []float64) {
	if kind == core.MeasureNone {
		return
	}
	s.kind, s.auxIn = kind, auxIn
	s.aux = make([]float64, s.total)
	if id := core.StoredIdentity(kind); id != 0 {
		for i := range s.aux {
			s.aux[i] = id
		}
	}
}

// coord resolves a value to its array coordinate on dimension position i:
// the dense index, or the "other" bucket len(Vals).
func (s *Space) coord(i int, v core.Value) int {
	vals := s.dims[i].Vals
	lo, hi := 0, len(vals)
	for lo < hi {
		mid := (lo + hi) / 2
		if vals[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(vals) && vals[lo] == v {
		return lo
	}
	return len(vals) // other
}

// Add aggregates one tuple into the base cuboid array.
func (s *Space) Add(tid core.TID) {
	idx := 0
	for i, dm := range s.dims {
		idx += s.coord(i, s.cols[dm.D][tid]) * s.strides[i]
	}
	s.counts[idx]++
	if s.closed {
		s.cls[idx].MergeTuple(tid, s.check, s.cols)
	}
	if s.aux != nil {
		s.aux[idx] = core.CombineStored(s.kind, s.aux[idx], s.auxIn[tid])
	}
}

// Cells returns the number of cells of the base cuboid array.
func (s *Space) Cells() int { return s.total }

// Emit is called by Process for every array cell whose coordinates are all
// dense (no "other" bucket): dimVals pairs each Dim.D in the cuboid's
// member set with its concrete value. cls is the zero Closedness unless the
// space aggregates closedness; aux is the cell's stored measure aggregate
// (0 unless SetMeasure was called).
type Emit func(members []Dim, dimVals []core.Value, count int64, cls core.Closedness, aux float64)

// Process walks the cuboid lattice: it emits the base cuboid and every
// sub-cuboid of the space, computing each from its designated parent by
// summing out one dimension. Cells are emitted at most once per cuboid; the
// caller applies its own min_sup and closedness filters in emit.
func (s *Space) Process(emit Emit) {
	members := make([]int, len(s.dims))
	for i := range members {
		members[i] = i
	}
	s.process(members, s.counts, s.cls, s.aux, emit)
}

// process handles the cuboid whose member dimension positions (into s.dims)
// are members, with the given aggregate arrays.
func (s *Space) process(members []int, counts []int64, cls []core.Closedness, aux []float64, emit Emit) {
	s.emitCuboid(members, counts, cls, aux, emit)
	outside := s.outside(members)
	for mi, j := range members {
		if !s.designated(j, outside) {
			continue
		}
		ccounts, ccls, caux := s.sumOut(members, mi, counts, cls, aux)
		child := make([]int, 0, len(members)-1)
		child = append(child, members[:mi]...)
		child = append(child, members[mi+1:]...)
		s.process(child, ccounts, ccls, caux, emit)
	}
}

// designated reports whether dimension position j is the cheapest way back
// into the parent lattice from members∖{j}: j must order strictly before
// every position outside the current member set (by size, then index). This
// makes the parent relation a spanning tree: every cuboid is computed from
// exactly one parent.
func (s *Space) designated(j int, outside []int) bool {
	for _, o := range outside {
		if s.sizes[o] < s.sizes[j] || (s.sizes[o] == s.sizes[j] && o < j) {
			return false
		}
	}
	return true
}

func (s *Space) outside(members []int) []int {
	in := make([]bool, len(s.dims))
	for _, m := range members {
		in[m] = true
	}
	var out []int
	for i := range s.dims {
		if !in[i] {
			out = append(out, i)
		}
	}
	return out
}

// emitCuboid walks one cuboid array, emitting cells without "other"
// coordinates.
func (s *Space) emitCuboid(members []int, counts []int64, cls []core.Closedness, aux []float64, emit Emit) {
	k := len(members)
	if k == 0 {
		var c core.Closedness
		if s.closed {
			c = cls[0]
		}
		var a float64
		if aux != nil {
			a = aux[0]
		}
		emit(nil, nil, counts[0], c, a)
		return
	}
	mdims := make([]Dim, k)
	for i, m := range members {
		mdims[i] = s.dims[m]
	}
	coords := make([]int, k)
	dimVals := make([]core.Value, k)
	others := 0 // how many coords sit on the "other" bucket
	for idx := range counts {
		if others == 0 && counts[idx] > 0 {
			for i, m := range members {
				dimVals[i] = s.dims[m].Vals[coords[i]]
			}
			var c core.Closedness
			if s.closed {
				c = cls[idx]
			}
			var a float64
			if aux != nil {
				a = aux[idx]
			}
			emit(mdims, dimVals, counts[idx], c, a)
		}
		// Advance the odometer, tracking "other" occupancy.
		for i := 0; i < k; i++ {
			m := members[i]
			coords[i]++
			if coords[i] == s.sizes[m]-1 {
				others++ // entered the other bucket
			}
			if coords[i] == s.sizes[m] {
				coords[i] = 0
				others-- // left the other bucket by rollover
				continue
			}
			break
		}
	}
}

// sumOut computes the child cuboid dropping members[mi], merging counts,
// closedness and the stored measure aggregate cell-wise.
func (s *Space) sumOut(members []int, mi int, counts []int64, cls []core.Closedness, aux []float64) ([]int64, []core.Closedness, []float64) {
	k := len(members)
	childTotal := 1
	cstride := make([]int, k) // contribution of each member coord to child idx
	for i, m := range members {
		if i == mi {
			cstride[i] = 0
			continue
		}
		cstride[i] = childTotal
		childTotal *= s.sizes[m]
	}
	ccounts := make([]int64, childTotal)
	var ccls []core.Closedness
	if s.closed {
		ccls = make([]core.Closedness, childTotal)
		for i := range ccls {
			ccls[i] = core.EmptyClosedness()
		}
	}
	var caux []float64
	if aux != nil {
		caux = make([]float64, childTotal)
		if id := core.StoredIdentity(s.kind); id != 0 {
			for i := range caux {
				caux[i] = id
			}
		}
	}
	coords := make([]int, k)
	cidx := 0
	for idx := range counts {
		if counts[idx] > 0 {
			ccounts[cidx] += counts[idx]
			if s.closed {
				ccls[cidx].Merge(cls[idx], s.check, s.cols)
			}
			if caux != nil {
				caux[cidx] = core.CombineStored(s.kind, caux[cidx], aux[idx])
			}
		}
		for i := 0; i < k; i++ {
			m := members[i]
			coords[i]++
			cidx += cstride[i]
			if coords[i] == s.sizes[m] {
				coords[i] = 0
				cidx -= s.sizes[m] * cstride[i]
				continue
			}
			break
		}
	}
	return ccounts, ccls, caux
}
