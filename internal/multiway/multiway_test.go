package multiway

import (
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/gen"
	"ccubing/internal/table"
)

// collect runs a space over all tuples of t with the given dense dims and
// gathers emitted cells into a map keyed by cell key over the full dims.
func collect(t *testing.T, tb *table.Table, dims []Dim, closed bool) map[string]int64 {
	t.Helper()
	s, err := NewSpace(dims, tb.Cards, closed, tb.Cols, 1<<20)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	for i := 0; i < tb.NumTuples(); i++ {
		s.Add(core.TID(i))
	}
	got := map[string]int64{}
	vals := make([]core.Value, tb.NumDims())
	s.Process(func(members []Dim, dimVals []core.Value, count int64, _ core.Closedness, _ float64) {
		for d := range vals {
			vals[d] = core.Star
		}
		for i := range members {
			vals[members[i].D] = dimVals[i]
		}
		k := core.CellKey(vals)
		if _, dup := got[k]; dup {
			t.Fatalf("duplicate emission for %v", vals)
		}
		got[k] = count
	})
	return got
}

// bruteDense computes the expected dense-space cells by brute force: every
// combination of (dense value | star) per array dimension, counting matching
// tuples.
func bruteDense(tb *table.Table, dims []Dim) map[string]int64 {
	want := map[string]int64{}
	var rec func(i int, vals []core.Value)
	vals := make([]core.Value, tb.NumDims())
	for d := range vals {
		vals[d] = core.Star
	}
	count := func(vals []core.Value) int64 {
		var c int64
		for t := 0; t < tb.NumTuples(); t++ {
			ok := true
			for d, v := range vals {
				if v != core.Star && tb.Cols[d][t] != v {
					ok = false
					break
				}
			}
			if ok {
				c++
			}
		}
		return c
	}
	rec = func(i int, vals []core.Value) {
		if i == len(dims) {
			if c := count(vals); c > 0 {
				want[core.CellKey(vals)] = c
			}
			return
		}
		rec(i+1, vals)
		for _, v := range dims[i].Vals {
			vals[dims[i].D] = v
			rec(i+1, vals)
			vals[dims[i].D] = core.Star
		}
	}
	rec(0, vals)
	return want
}

func TestSpaceMatchesBruteForce(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 300, D: 4, C: 5, S: 1, Seed: 3})
	dims := []Dim{
		{D: 0, Vals: []core.Value{0, 2, 4}},
		{D: 2, Vals: []core.Value{1, 3}},
		{D: 3, Vals: []core.Value{0}},
	}
	got := collect(t, tb, dims, false)
	want := bruteDense(tb, dims)
	if len(got) != len(want) {
		t.Fatalf("got %d cells, want %d", len(got), len(want))
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("cell count mismatch: got %d want %d", got[k], c)
		}
	}
}

func TestSpaceEmptyDims(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 50, D: 2, C: 3, Seed: 1})
	got := collect(t, tb, nil, false)
	apex := core.CellKey([]core.Value{core.Star, core.Star})
	if len(got) != 1 || got[apex] != 50 {
		t.Fatalf("empty-dims space = %v", got)
	}
}

func TestSpaceClosednessMatchesExact(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 200, D: 3, C: 4, S: 0.5, Seed: 5})
	dims := []Dim{
		{D: 0, Vals: []core.Value{0, 1, 2, 3}},
		{D: 1, Vals: []core.Value{0, 1, 2, 3}},
	}
	s, err := NewSpace(dims, tb.Cards, true, tb.Cols, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tb.NumTuples(); i++ {
		s.Add(core.TID(i))
	}
	s.Process(func(members []Dim, dimVals []core.Value, count int64, cls core.Closedness, _ float64) {
		// Recompute the measure from scratch for the emitted cell.
		var tids []core.TID
		for tid := 0; tid < tb.NumTuples(); tid++ {
			ok := true
			for i := range members {
				if tb.Cols[members[i].D][tid] != dimVals[i] {
					ok = false
					break
				}
			}
			if ok {
				tids = append(tids, core.TID(tid))
			}
		}
		want := core.ExactClosedness(tids, tb.Cols)
		if cls.Rep != want.Rep || cls.Mask&core.LowBits(3) != want.Mask&core.LowBits(3) {
			t.Fatalf("closedness mismatch for %v/%v: got %+v want %+v",
				members, dimVals, cls, want)
		}
	})
}

func TestNewSpaceErrors(t *testing.T) {
	cards := []int{4, 4}
	cols := core.Columns{{0}, {0}}
	if _, err := NewSpace([]Dim{{D: 0, Vals: nil}}, cards, false, cols, 100); err == nil {
		t.Fatal("empty dense set must error")
	}
	big := []Dim{
		{D: 0, Vals: []core.Value{0, 1, 2, 3}},
		{D: 1, Vals: []core.Value{0, 1, 2, 3}},
	}
	if _, err := NewSpace(big, cards, false, cols, 10); err == nil {
		t.Fatal("budget overflow must error")
	}
}

func TestCells(t *testing.T) {
	cards := []int{4, 4}
	cols := core.Columns{{0}, {0}}
	s, err := NewSpace([]Dim{{D: 0, Vals: []core.Value{0, 1}}}, cards, false, cols, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cells() != 3 { // 2 dense + other
		t.Fatalf("Cells = %d", s.Cells())
	}
}
