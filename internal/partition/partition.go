// Package partition is the out-of-core driver of paper Sec. 6.3: the
// relation is scanned once and split into smaller partition files by hashing
// one dimension's values, each partition is loaded and cubed independently
// (releasing its memory before the next starts), and the cells that collapse
// the partitioning dimension are produced by one final pass with that
// dimension moved last.
//
// Correctness notes: a cell that fixes the partitioning dimension has all of
// its tuples inside one partition, so count and closedness computed there
// are globally correct. Cells with a wildcard on the partitioning dimension
// may span partitions, so partition runs filter them out and the final pass
// (which sees every tuple, with the partitioning dimension positioned last
// where tree engines keep it cheapest) keeps exactly those. The final pass
// trades the paper's tree-merging sketch for a simpler full pass; see
// DESIGN.md.
package partition

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"ccubing/internal/core"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// Engine runs one cubing algorithm over a relation, emitting into a sink.
// The facade adapts its configured algorithm to this shape.
type Engine func(*table.Table, sink.Sink) error

// Config parameterizes a partitioned run.
type Config struct {
	// Dim is the partitioning dimension.
	Dim int
	// Buckets bounds the number of partition files (values are hashed into
	// buckets). Defaults to 16.
	Buckets int
	// TempDir receives the partition files; defaults to os.TempDir().
	TempDir string
	// Workers loads and cubes up to that many partitions concurrently
	// during the first pass. The default 1 keeps the driver's one-partition
	// memory bound; n > 1 trades it for an n-partition bound.
	Workers int
}

// Run computes the cube of t with the given engine, bounding engine memory
// to one partition at a time (plus the final collapsed pass). The emitted
// cell set is identical to engine(t, out) run directly.
func Run(t *table.Table, cfg Config, engine Engine, out sink.Sink) error {
	if cfg.Dim < 0 || cfg.Dim >= t.NumDims() {
		return fmt.Errorf("partition: dimension %d out of range", cfg.Dim)
	}
	nb := cfg.Buckets
	if nb <= 0 {
		nb = 16
	}
	if nb > t.Cards[cfg.Dim] {
		nb = t.Cards[cfg.Dim]
	}
	dir, err := os.MkdirTemp(cfg.TempDir, "ccubing-part-*")
	if err != nil {
		return fmt.Errorf("partition: %w", err)
	}
	defer os.RemoveAll(dir)

	if err := spill(t, cfg.Dim, nb, dir); err != nil {
		return err
	}

	// Pass 1: one engine run per partition; keep only cells fixing Dim.
	workers := cfg.Workers
	if workers > nb {
		workers = nb
	}
	if workers <= 1 {
		for b := 0; b < nb; b++ {
			if err := cubeBucket(dir, b, t, cfg.Dim, engine, out); err != nil {
				return err
			}
		}
	} else if err := cubeBucketsParallel(dir, nb, workers, t, cfg.Dim, engine, out); err != nil {
		return err
	}

	// Pass 2: cells collapsing Dim, computed with Dim moved last.
	perm := make([]int, 0, t.NumDims())
	for d := 0; d < t.NumDims(); d++ {
		if d != cfg.Dim {
			perm = append(perm, d)
		}
	}
	perm = append(perm, cfg.Dim)
	rt, err := t.Reorder(perm)
	if err != nil {
		return err
	}
	rs := &remapSink{next: out, perm: perm, dim: t.NumDims() - 1, scratch: make([]core.Value, t.NumDims())}
	rs.nextAux, _ = out.(sink.AuxSink)
	return engine(rt, rs)
}

// cubeBucket loads one partition file and cubes it, keeping the cells that
// fix the partition dimension.
func cubeBucket(dir string, b int, t *table.Table, dim int, engine Engine, out sink.Sink) error {
	pt, err := load(filepath.Join(dir, bucketName(b)), t)
	if err != nil {
		return err
	}
	if pt.NumTuples() == 0 {
		return nil
	}
	f := newFilterSink(out, dim, true)
	if err := engine(pt, f); err != nil {
		return fmt.Errorf("partition: bucket %d: %w", b, err)
	}
	return nil
}

// cubeBucketsParallel is pass 1 with up to `workers` partitions in memory at
// once, their emissions serialized into out through a merging sink. After a
// bucket fails no further buckets start (in-flight ones finish), matching
// the sequential path's fail-fast behavior.
func cubeBucketsParallel(dir string, nb, workers int, t *table.Table, dim int, engine Engine, out sink.Sink) error {
	merger := sink.NewMerger(out)
	buckets := make(chan int)
	var wg sync.WaitGroup
	var failed atomic.Bool
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mw := merger.Worker()
			for b := range buckets {
				if err := cubeBucket(dir, b, t, dim, engine, mw); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
			mw.Flush()
		}()
	}
	for b := 0; b < nb; b++ {
		if failed.Load() {
			break
		}
		buckets <- b
	}
	close(buckets)
	wg.Wait()
	return firstErr
}

// filterSink keeps cells whose partition dimension is fixed (pass 1).
type filterSink struct {
	next      sink.Sink
	nextAux   sink.AuxSink // next, when it also accepts measures
	dim       int
	keepFixed bool
}

func newFilterSink(next sink.Sink, dim int, keepFixed bool) *filterSink {
	f := &filterSink{next: next, dim: dim, keepFixed: keepFixed}
	f.nextAux, _ = next.(sink.AuxSink)
	return f
}

func (f *filterSink) Emit(vals []core.Value, count int64) {
	fixed := vals[f.dim] != core.Star
	if fixed == f.keepFixed {
		f.next.Emit(vals, count)
	}
}

// EmitAux forwards native-measure emissions; cells fixing the partition
// dimension have all their tuples in one partition, so the aggregate computed
// there is globally correct, same as count.
func (f *filterSink) EmitAux(vals []core.Value, count int64, aux float64) {
	fixed := vals[f.dim] != core.Star
	if fixed != f.keepFixed {
		return
	}
	if f.nextAux != nil {
		f.nextAux.EmitAux(vals, count, aux)
		return
	}
	f.next.Emit(vals, count)
}

// remapSink maps cells from the reordered table back to original dimension
// positions and keeps only cells collapsing the moved-last dimension.
type remapSink struct {
	next    sink.Sink
	nextAux sink.AuxSink
	perm    []int // new position -> original dimension
	dim     int   // position of the partition dimension in the reordered table
	scratch []core.Value
}

func (r *remapSink) Emit(vals []core.Value, count int64) {
	if vals[r.dim] != core.Star {
		return
	}
	for i, v := range vals {
		r.scratch[r.perm[i]] = v
	}
	r.next.Emit(r.scratch, count)
}

// EmitAux is Emit for native-measure cells; the final pass sees every tuple,
// so its aggregates are globally correct.
func (r *remapSink) EmitAux(vals []core.Value, count int64, aux float64) {
	if vals[r.dim] != core.Star {
		return
	}
	for i, v := range vals {
		r.scratch[r.perm[i]] = v
	}
	if r.nextAux != nil {
		r.nextAux.EmitAux(r.scratch, count, aux)
		return
	}
	r.next.Emit(r.scratch, count)
}

func bucketName(b int) string { return fmt.Sprintf("bucket-%03d.bin", b) }

// spill streams the relation into per-bucket binary files: for each tuple,
// nd int32 values (plus a float64 when the relation has an aux measure).
func spill(t *table.Table, dim, nb int, dir string) error {
	files := make([]*os.File, nb)
	bufs := make([][]byte, nb)
	for b := range files {
		f, err := os.Create(filepath.Join(dir, bucketName(b)))
		if err != nil {
			return fmt.Errorf("partition: %w", err)
		}
		files[b] = f
	}
	defer func() {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
	}()
	nd := t.NumDims()
	n := t.NumTuples()
	for tid := 0; tid < n; tid++ {
		b := int(t.Cols[dim][tid]) % nb
		buf := bufs[b]
		for d := 0; d < nd; d++ {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Cols[d][tid]))
		}
		if t.Aux != nil {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(t.Aux[tid]*auxScale)))
		}
		bufs[b] = buf
		if len(bufs[b]) >= 1<<16 {
			if _, err := files[b].Write(bufs[b]); err != nil {
				return fmt.Errorf("partition: %w", err)
			}
			bufs[b] = bufs[b][:0]
		}
	}
	for b, f := range files {
		if len(bufs[b]) > 0 {
			if _, err := f.Write(bufs[b]); err != nil {
				return fmt.Errorf("partition: %w", err)
			}
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("partition: %w", err)
		}
		files[b] = nil
	}
	return nil
}

// auxScale fixes the binary encoding of aux measures (micro precision).
const auxScale = 1e6

// load reads one partition file back into a table sharing the parent's
// schema.
func load(path string, parent *table.Table) (*table.Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	nd := parent.NumDims()
	rec := 4 * nd
	hasAux := parent.Aux != nil
	if hasAux {
		rec += 8
	}
	if len(data)%rec != 0 {
		return nil, fmt.Errorf("partition: %s truncated (%d bytes, record %d)", path, len(data), rec)
	}
	n := len(data) / rec
	pt := table.New(nd, n)
	copy(pt.Names, parent.Names)
	copy(pt.Cards, parent.Cards)
	if hasAux {
		pt.Aux = make([]float64, n)
	}
	off := 0
	for i := 0; i < n; i++ {
		for d := 0; d < nd; d++ {
			pt.Cols[d][i] = core.Value(binary.LittleEndian.Uint32(data[off:]))
			off += 4
		}
		if hasAux {
			pt.Aux[i] = float64(int64(binary.LittleEndian.Uint64(data[off:]))) / auxScale
			off += 8
		}
	}
	return pt, nil
}
