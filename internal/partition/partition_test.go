package partition

import (
	"testing"

	"ccubing/internal/gen"
	"ccubing/internal/mmcubing"
	"ccubing/internal/qcdfs"
	"ccubing/internal/sink"
	"ccubing/internal/stararray"
	"ccubing/internal/table"
)

func closedEngine(minsup int64) Engine {
	return func(t *table.Table, s sink.Sink) error {
		return stararray.Run(t, stararray.Config{MinSup: minsup, Closed: true}, s)
	}
}

// TestPartitionedEqualsDirect is the driver's contract: identical cell sets.
func TestPartitionedEqualsDirect(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 500, D: 4, C: 7, S: 1, Seed: 11})
	for _, dim := range []int{0, 2} {
		for _, minsup := range []int64{1, 3} {
			var direct sink.Collector
			if err := closedEngine(minsup)(tb, &direct); err != nil {
				t.Fatal(err)
			}
			var parted sink.Collector
			dd := &sink.Dedup{Next: &parted}
			err := Run(tb, Config{Dim: dim, Buckets: 4, TempDir: t.TempDir()},
				closedEngine(minsup), dd)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if dd.Dup != 0 {
				t.Fatalf("partitioned run emitted %d duplicates", dd.Dup)
			}
			if diff := sink.DiffCells(parted.Cells, direct.Cells, 8); diff != "" {
				t.Fatalf("dim %d min_sup %d mismatch:\n%s", dim, minsup, diff)
			}
		}
	}
}

func TestPartitionedOtherEngines(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 300, D: 3, C: 5, S: 0.5, Seed: 12})
	engines := map[string]Engine{
		"qcdfs": func(t *table.Table, s sink.Sink) error {
			return qcdfs.Run(t, qcdfs.Config{MinSup: 2}, s)
		},
		"mm-closed": func(t *table.Table, s sink.Sink) error {
			return mmcubing.Run(t, mmcubing.Config{MinSup: 2, Closed: true}, s)
		},
	}
	for name, eng := range engines {
		var direct, parted sink.Collector
		if err := eng(tb, &direct); err != nil {
			t.Fatal(err)
		}
		if err := Run(tb, Config{Dim: 1, Buckets: 3, TempDir: t.TempDir()}, eng, &parted); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if diff := sink.DiffCells(parted.Cells, direct.Cells, 8); diff != "" {
			t.Fatalf("%s mismatch:\n%s", name, diff)
		}
	}
}

func TestPartitionWithAux(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 100, D: 3, C: 4, Seed: 13})
	tb.Aux = make([]float64, 100)
	for i := range tb.Aux {
		tb.Aux[i] = float64(i) + 0.25
	}
	// Spill + load must round-trip the aux column.
	dir := t.TempDir()
	if err := spill(tb, 0, 2, dir); err != nil {
		t.Fatal(err)
	}
	n := 0
	for b := 0; b < 2; b++ {
		pt, err := load(dir+"/"+bucketName(b), tb)
		if err != nil {
			t.Fatal(err)
		}
		n += pt.NumTuples()
		for i := 0; i < pt.NumTuples(); i++ {
			if pt.Aux[i] != float64(int(pt.Aux[i]))+0.25 {
				t.Fatalf("aux corrupted: %v", pt.Aux[i])
			}
		}
	}
	if n != 100 {
		t.Fatalf("tuples after spill = %d", n)
	}
}

func TestBadDim(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 10, D: 2, C: 2, Seed: 1})
	if err := Run(tb, Config{Dim: 5}, closedEngine(1), &sink.Collector{}); err == nil {
		t.Fatal("out-of-range dim must error")
	}
}

func TestBucketsCappedByCardinality(t *testing.T) {
	tb := gen.MustSynthetic(gen.Config{T: 60, D: 3, C: 2, S: 0, Seed: 14})
	var direct, parted sink.Collector
	if err := closedEngine(1)(tb, &direct); err != nil {
		t.Fatal(err)
	}
	// Ask for more buckets than dim 0 has values.
	if err := Run(tb, Config{Dim: 0, Buckets: 64, TempDir: t.TempDir()}, closedEngine(1), &parted); err != nil {
		t.Fatal(err)
	}
	if diff := sink.DiffCells(parted.Cells, direct.Cells, 8); diff != "" {
		t.Fatalf("mismatch:\n%s", diff)
	}
}
