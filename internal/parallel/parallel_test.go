package parallel

import (
	"fmt"
	"math"
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/engine"
	"ccubing/internal/gen"
	"ccubing/internal/sink"
	"ccubing/internal/table"

	_ "ccubing/internal/buc"
	_ "ccubing/internal/mmcubing"
	_ "ccubing/internal/obcheck"
	_ "ccubing/internal/qcdfs"
	_ "ccubing/internal/qctree"
	_ "ccubing/internal/stararray"
	_ "ccubing/internal/startree"
)

// testTables builds the two regimes the closed-pruning machinery cares
// about: a skewed relation and a dependent one (paper Sec. 5.3).
func testTables(t *testing.T) map[string]*table.Table {
	t.Helper()
	cards := []int{16, 9, 7, 5, 11}
	skewed, err := gen.Synthetic(gen.Config{T: 1200, Cards: cards, S: 1.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	dependent, err := gen.Synthetic(gen.Config{
		T: 1200, Cards: cards, S: 0.8, Seed: 11,
		Rules: gen.RulesForDependence(2, cards, 12),
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*table.Table{"skewed": skewed, "dependent": dependent}
}

// engineModes lists every registered engine with the modes it supports.
func engineModes() []engine.Config {
	return []engine.Config{
		{MinSup: 1, Closed: true},
		{MinSup: 4, Closed: true},
		{MinSup: 1},
		{MinSup: 4},
	}
}

// TestRunMatchesSequential is the core equivalence property: for every
// engine, mode and dataset, the parallel driver emits cell-for-cell the same
// cube as a direct sequential run.
func TestRunMatchesSequential(t *testing.T) {
	for name, tbl := range testTables(t) {
		for _, engName := range engine.Names() {
			eng := engine.MustLookup(engName)
			caps := eng.Capabilities()
			for _, ecfg := range engineModes() {
				if (ecfg.Closed && !caps.Closed) || (!ecfg.Closed && !caps.Iceberg) {
					continue
				}
				label := fmt.Sprintf("%s/%s/minsup=%d/closed=%v", name, engName, ecfg.MinSup, ecfg.Closed)
				t.Run(label, func(t *testing.T) {
					var want sink.Collector
					if err := eng.Run(tbl, ecfg, &want); err != nil {
						t.Fatal(err)
					}
					for _, cfg := range []Config{
						{Workers: 1},
						{Workers: 4},
						{Workers: 4, Dim: 2, Shards: 3},
					} {
						var got sink.Collector
						if err := Run(tbl, eng, ecfg, cfg, &got); err != nil {
							t.Fatal(err)
						}
						if diff := sink.DiffCells(got.Cells, want.Cells, 10); diff != "" {
							t.Fatalf("cfg %+v: parallel output differs from sequential:\n%s", cfg, diff)
						}
					}
				})
			}
		}
	}
}

// TestRunNativeMeasure checks native measure values survive the parallel
// decomposition for both measure-capable engines (iceberg and closed mode).
func TestRunNativeMeasure(t *testing.T) {
	tbl := testTables(t)["skewed"]
	aux := make([]float64, tbl.NumTuples())
	for i := range aux {
		aux[i] = float64(i%13) - 3.5
	}
	tbl.Aux = aux
	defer func() { tbl.Aux = nil }()

	cases := []struct {
		engName string
		ecfg    engine.Config
	}{
		{"BUC", engine.Config{MinSup: 3, Measure: core.MeasureSum}},
		{"BUC", engine.Config{MinSup: 3, Measure: core.MeasureAvg}},
		{"QC-DFS", engine.Config{MinSup: 1, Closed: true, Measure: core.MeasureSum}},
		{"QC-DFS", engine.Config{MinSup: 3, Closed: true, Measure: core.MeasureMax}},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%s/%v", c.engName, c.ecfg.Measure), func(t *testing.T) {
			eng := engine.MustLookup(c.engName)
			var want sink.AuxCollector
			if err := eng.Run(tbl, c.ecfg, &want); err != nil {
				t.Fatal(err)
			}
			var got sink.AuxCollector
			if err := Run(tbl, eng, c.ecfg, Config{Workers: 4}, &got); err != nil {
				t.Fatal(err)
			}
			wantAux := auxByKey(t, want.Cells)
			gotAux := auxByKey(t, got.Cells)
			if len(wantAux) != len(gotAux) {
				t.Fatalf("got %d cells, want %d", len(gotAux), len(wantAux))
			}
			for k, wa := range wantAux {
				ga, ok := gotAux[k]
				if !ok {
					t.Fatalf("missing cell %q", k)
				}
				if math.Abs(ga-wa) > 1e-9 {
					t.Fatalf("aux mismatch: got %g want %g", ga, wa)
				}
			}
		})
	}
}

func auxByKey(t *testing.T, cells []core.Cell) map[string]float64 {
	t.Helper()
	m := make(map[string]float64, len(cells))
	for _, c := range cells {
		k := c.Key()
		if _, dup := m[k]; dup {
			t.Fatalf("duplicate cell %v", c.Values)
		}
		m[k] = c.Aux
	}
	return m
}

// errEngine fails on tables over a size threshold, so shard jobs succeed and
// the final pass fails (or vice versa) depending on the threshold.
type errEngine struct{ maxTuples int }

func (errEngine) Name() string                      { return "err-engine" }
func (errEngine) Capabilities() engine.Capabilities { return engine.Capabilities{Iceberg: true} }
func (e errEngine) Run(t *table.Table, cfg engine.Config, out sink.Sink) error {
	if t.NumTuples() > e.maxTuples {
		return fmt.Errorf("table too large: %d tuples", t.NumTuples())
	}
	return nil
}

func TestRunPropagatesEngineError(t *testing.T) {
	tbl := testTables(t)["skewed"]
	err := Run(tbl, errEngine{maxTuples: 10}, engine.Config{MinSup: 1}, Config{Workers: 3}, &sink.Null{})
	if err == nil {
		t.Fatal("engine error did not propagate")
	}
}

// TestRunSingleDim checks the degenerate one-dimension fallback.
func TestRunSingleDim(t *testing.T) {
	tbl, err := gen.Synthetic(gen.Config{T: 200, Cards: []int{5}, S: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.MustLookup("CC(Star)")
	var want, got sink.Collector
	if err := eng.Run(tbl, engine.Config{MinSup: 1, Closed: true}, &want); err != nil {
		t.Fatal(err)
	}
	if err := Run(tbl, eng, engine.Config{MinSup: 1, Closed: true}, Config{Workers: 4}, &got); err != nil {
		t.Fatal(err)
	}
	if diff := sink.DiffCells(got.Cells, want.Cells, 10); diff != "" {
		t.Fatalf("single-dim output differs:\n%s", diff)
	}
}
