// Package parallel is the in-memory, multi-core analogue of the out-of-core
// partition driver (paper Sec. 6.3): the relation is split on one dimension
// into shards, each shard is cubed independently by a pool of workers, and
// the cells that collapse the partitioning dimension come from one final
// pass over the full relation with that dimension taken out of enumeration.
//
// Correctness mirrors internal/partition. A cell that fixes the partitioning
// dimension has all of its tuples inside one shard (shards group dimension
// values), so count, measure and closedness computed there are globally
// correct; shard runs keep exactly those cells. Cells with a wildcard on the
// partitioning dimension are computed by the final pass over the projection
// of the relation without that dimension: for plain iceberg cubes the
// projection cube is exactly the wildcard slice of the full cube (counts and
// measures aggregate over the removed dimension). For closed cubes one more
// check is needed — a cell closed with respect to every remaining dimension
// is still non-closed when all of its tuples agree on the partitioning
// dimension (the cell fixing that shared value covers it with equal count).
// That check is performed the way the paper performs closedness checking:
// by aggregation, not by output indices or per-cell rescans. One scan of the
// relation (parallelized over tuple ranges) folds each tuple's partitioning-
// dimension value into a first-value/conflict aggregate per candidate cell;
// candidates whose aggregate never saw two distinct values are dropped.
package parallel

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ccubing/internal/core"
	"ccubing/internal/engine"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// Config parameterizes a parallel run.
type Config struct {
	// Workers is the number of concurrent engine goroutines; values below 1
	// run the same decomposition on a single goroutine.
	Workers int
	// Dim is the partitioning dimension; negative picks the dimension with
	// the highest cardinality (whose fixed cells — the bulk of the cube —
	// then spread across the most shards).
	Dim int
	// Shards bounds how many shards the relation splits into (values are
	// hashed into shards). Defaults to 4×Workers, capped by the partition
	// dimension's cardinality.
	Shards int
}

// Run computes the cube of t with eng under ecfg, distributing the work
// across cfg.Workers goroutines, and emits every cell into out. Emissions
// are serialized (out need not be goroutine-safe) but arrive in
// nondeterministic order. The emitted cell set is identical to
// eng.Run(t, ecfg, out).
func Run(t *table.Table, eng engine.Engine, ecfg engine.Config, cfg Config, out sink.Sink) error {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	nd := t.NumDims()
	if nd < 2 || t.NumTuples() == 0 {
		// Nothing to decompose on; a single sequential run is the whole job.
		return eng.Run(t, ecfg, out)
	}
	dim := cfg.Dim
	if dim < 0 {
		dim = 0
		for d := 1; d < nd; d++ {
			if t.Cards[d] > t.Cards[dim] {
				dim = d
			}
		}
	}
	if dim >= nd {
		return fmt.Errorf("parallel: dimension %d out of range", dim)
	}
	ns := cfg.Shards
	if ns <= 0 {
		ns = 4 * workers
	}
	if ns > t.Cards[dim] {
		ns = t.Cards[dim]
	}
	if ns < 1 {
		ns = 1
	}

	shards := ShardTables(t, dim, ns)
	projDims := make([]int, 0, nd-1)
	for d := 0; d < nd; d++ {
		if d != dim {
			projDims = append(projDims, d)
		}
	}
	pt, err := t.Project(projDims)
	if err != nil {
		return err
	}

	merger := sink.NewMerger(out)
	var candidates []core.Cell // closed mode: projected cells pending the dim check

	// The final pass is usually the longest job, so it goes first; shards
	// follow largest-first to keep the pool balanced under skew.
	sort.Slice(shards, func(i, j int) bool { return shards[i].NumTuples() > shards[j].NumTuples() })
	jobs := make([]func() error, 0, len(shards)+1)
	jobs = append(jobs, func() error {
		if ecfg.Closed {
			col := &sink.AuxCollector{}
			if err := eng.Run(pt, ecfg, col); err != nil {
				return fmt.Errorf("parallel: final pass: %w", err)
			}
			candidates = col.Cells
			return nil
		}
		w := merger.Worker()
		ins := &starInsert{next: w, dim: dim, scratch: make([]core.Value, nd)}
		if err := eng.Run(pt, ecfg, ins); err != nil {
			return fmt.Errorf("parallel: final pass: %w", err)
		}
		w.Flush()
		return nil
	})
	for _, st := range shards {
		st := st
		jobs = append(jobs, func() error {
			w := merger.Worker()
			f := &fixedFilter{next: w, dim: dim}
			if err := eng.Run(st, ecfg, f); err != nil {
				return fmt.Errorf("parallel: shard: %w", err)
			}
			w.Flush()
			return nil
		})
	}
	if err := RunPool(workers, jobs); err != nil {
		return err
	}

	if ecfg.Closed {
		w := merger.Worker()
		for _, c := range ClosedSurvivors(t, dim, projDims, candidates, workers) {
			w.EmitAux(c.Values, c.Count, c.Aux)
		}
		w.Flush()
	}
	return nil
}

// ShardTables splits t into ns sub-tables on dimension dim (value % ns picks
// the shard, so every tuple sharing a dimension value lands in the same
// shard), copying tuples column by column. Shards inherit the parent's
// schema and cardinalities. Empty shards are omitted. Shared with
// internal/refresh, which shards only the partitions a delta touched.
func ShardTables(t *table.Table, dim, ns int) []*table.Table {
	n := t.NumTuples()
	nd := t.NumDims()
	counts := make([]int, ns)
	assign := make([]int32, n)
	pos := make([]int32, n)
	for tid := 0; tid < n; tid++ {
		s := int(t.Cols[dim][tid]) % ns
		assign[tid] = int32(s)
		pos[tid] = int32(counts[s])
		counts[s]++
	}
	shards := make([]*table.Table, 0, ns)
	dst := make([]*table.Table, ns)
	for s := 0; s < ns; s++ {
		if counts[s] == 0 {
			continue
		}
		st := table.New(nd, counts[s])
		copy(st.Names, t.Names)
		copy(st.Cards, t.Cards)
		if t.Aux != nil {
			st.Aux = make([]float64, counts[s])
		}
		dst[s] = st
		shards = append(shards, st)
	}
	for d := 0; d < nd; d++ {
		src := t.Cols[d]
		for tid := 0; tid < n; tid++ {
			dst[assign[tid]].Cols[d][pos[tid]] = src[tid]
		}
	}
	if t.Aux != nil {
		for tid := 0; tid < n; tid++ {
			dst[assign[tid]].Aux[pos[tid]] = t.Aux[tid]
		}
	}
	return shards
}

// RunPool executes jobs on `workers` goroutines, returning the first error.
// After a job fails no further jobs start (in-flight ones finish).
func RunPool(workers int, jobs []func() error) error {
	if workers > len(jobs) {
		workers = len(jobs)
	}
	ch := make(chan func() error)
	var wg sync.WaitGroup
	var failed atomic.Bool
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range ch {
				if err := job(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	for _, job := range jobs {
		if failed.Load() {
			break
		}
		ch <- job
	}
	close(ch)
	wg.Wait()
	return firstErr
}

// fixedFilter keeps cells fixing the partition dimension (shard runs).
type fixedFilter struct {
	next sink.AuxSink
	dim  int
}

func (f *fixedFilter) Emit(vals []core.Value, count int64) { f.EmitAux(vals, count, 0) }

func (f *fixedFilter) EmitAux(vals []core.Value, count int64, aux float64) {
	if vals[f.dim] != core.Star {
		f.next.EmitAux(vals, count, aux)
	}
}

// starInsert widens projected cells back to the full dimensionality, placing
// Star at the removed partition dimension (final pass, iceberg mode).
type starInsert struct {
	next    sink.AuxSink
	dim     int
	scratch []core.Value
}

func (s *starInsert) Emit(vals []core.Value, count int64) { s.EmitAux(vals, count, 0) }

func (s *starInsert) EmitAux(vals []core.Value, count int64, aux float64) {
	copy(s.scratch[:s.dim], vals[:s.dim])
	s.scratch[s.dim] = core.Star
	copy(s.scratch[s.dim+1:], vals[s.dim:])
	s.next.EmitAux(s.scratch, count, aux)
}

// maskGroup indexes the closed-mode candidates of one cuboid (one pattern of
// fixed projected dimensions) for the agreement scan.
type maskGroup struct {
	dims  []int          // fixed dimensions, as original-table indices
	index map[string]int // packed fixed values -> candidate index
}

// ClosedSurvivors finishes the closed-mode final pass over the projection
// cube: given the closed candidates computed on the relation projected
// without dim (values in projDims order), it drops every candidate whose
// tuples all share one value on the partition dimension (the cell fixing
// that value covers it with equal count, so it is not closed) and returns
// the rest, widened back to t's dimensionality with a wildcard at dim. The
// decision aggregates a first-value/conflict pair per candidate over one
// scan of the relation, parallelized by tuple range. Shared with
// internal/refresh, which rebuilds the wildcard slice on every refresh.
func ClosedSurvivors(t *table.Table, dim int, projDims []int, candidates []core.Cell, workers int) []core.Cell {
	if len(candidates) == 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	groups := buildMaskGroups(projDims, candidates)

	n := t.NumTuples()
	chunks := workers
	if chunks > n {
		chunks = n
	}
	// first[c] is the first partition-dimension value seen for candidate c
	// (-1 until one is seen); conflict[c] flips when a second distinct value
	// appears, i.e. the candidate is closed on the partition dimension.
	firsts := make([][]core.Value, chunks)
	conflicts := make([][]bool, chunks)
	var wg sync.WaitGroup
	for c := 0; c < chunks; c++ {
		lo, hi := c*n/chunks, (c+1)*n/chunks
		first := make([]core.Value, len(candidates))
		for i := range first {
			first[i] = -1
		}
		conflict := make([]bool, len(candidates))
		firsts[c], conflicts[c] = first, conflict
		wg.Add(1)
		go func() {
			defer wg.Done()
			scanAgreement(t, dim, groups, lo, hi, first, conflict)
		}()
	}
	wg.Wait()

	var out []core.Cell
	for ci, cand := range candidates {
		first := core.Value(-1)
		conflict := false
		for c := 0; c < chunks && !conflict; c++ {
			if conflicts[c][ci] {
				conflict = true
			} else if v := firsts[c][ci]; v >= 0 {
				if first >= 0 && first != v {
					conflict = true
				}
				first = v
			}
		}
		if !conflict {
			continue // one shared value on dim covers the candidate
		}
		vals := make([]core.Value, t.NumDims())
		copy(vals[:dim], cand.Values[:dim])
		vals[dim] = core.Star
		copy(vals[dim+1:], cand.Values[dim:])
		out = append(out, core.Cell{Values: vals, Count: cand.Count, Aux: cand.Aux})
	}
	return out
}

// buildMaskGroups groups candidates by their fixed-dimension pattern and
// indexes each group by its packed fixed values.
func buildMaskGroups(projDims []int, candidates []core.Cell) []*maskGroup {
	byMask := make(map[uint64]*maskGroup)
	var buf []byte
	for ci, cand := range candidates {
		var mask uint64
		for i, v := range cand.Values {
			if v != core.Star {
				mask |= 1 << uint(i)
			}
		}
		g := byMask[mask]
		if g == nil {
			g = &maskGroup{index: make(map[string]int)}
			for i, v := range cand.Values {
				if v != core.Star {
					g.dims = append(g.dims, projDims[i])
				}
			}
			byMask[mask] = g
		}
		buf = buf[:0]
		for _, v := range cand.Values {
			if v != core.Star {
				buf = core.AppendValue(buf, v)
			}
		}
		g.index[string(buf)] = ci
	}
	groups := make([]*maskGroup, 0, len(byMask))
	for _, g := range byMask {
		groups = append(groups, g)
	}
	return groups
}

// scanAgreement folds tuples [lo, hi) into the per-candidate aggregates.
func scanAgreement(t *table.Table, dim int, groups []*maskGroup, lo, hi int, first []core.Value, conflict []bool) {
	dimCol := t.Cols[dim]
	var buf []byte
	for _, g := range groups {
		for tid := lo; tid < hi; tid++ {
			buf = buf[:0]
			for _, d := range g.dims {
				buf = core.AppendValue(buf, t.Cols[d][tid])
			}
			ci, ok := g.index[string(buf)]
			if !ok {
				continue
			}
			if conflict[ci] {
				continue
			}
			v := dimCol[tid]
			if first[ci] < 0 {
				first[ci] = v
			} else if first[ci] != v {
				conflict[ci] = true
			}
		}
	}
}
