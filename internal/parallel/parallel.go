// Package parallel is the in-memory, multi-core analogue of the out-of-core
// partition driver (paper Sec. 6.3): the relation is split on one dimension
// into shards, each shard is cubed independently by a pool of workers, and
// the cells that collapse the partitioning dimension come from one final
// pass over the full relation with that dimension taken out of enumeration.
//
// Correctness mirrors internal/partition. A cell that fixes the partitioning
// dimension has all of its tuples inside one shard (shards group dimension
// values), so count, measure and closedness computed there are globally
// correct; shard runs keep exactly those cells. Cells with a wildcard on the
// partitioning dimension are computed by the final pass over the projection
// of the relation without that dimension: for plain iceberg cubes the
// projection cube is exactly the wildcard slice of the full cube (counts and
// measures aggregate over the removed dimension). For closed cubes one more
// check is needed — a cell closed with respect to every remaining dimension
// is still non-closed when all of its tuples agree on the partitioning
// dimension (the cell fixing that shared value covers it with equal count).
// That check is performed the way the paper performs closedness checking:
// by aggregation, not by output indices or per-cell rescans. One scan of the
// relation (parallelized over tuple ranges) folds each tuple's partitioning-
// dimension value into a first-value/conflict aggregate per candidate cell;
// candidates whose aggregate never saw two distinct values are dropped. The
// scan's chunk jobs are submitted into the same worker pool as the shard
// jobs the moment the projection pass finishes, so the check overlaps shard
// cubing instead of serializing after it.
package parallel

import (
	"fmt"
	"sort"
	"sync"

	"ccubing/internal/core"
	"ccubing/internal/engine"
	"ccubing/internal/sink"
	"ccubing/internal/table"
)

// Config parameterizes a parallel run.
type Config struct {
	// Workers is the number of concurrent engine goroutines; values below 1
	// run the same decomposition on a single goroutine.
	Workers int
	// Dim is the partitioning dimension; negative picks the dimension with
	// the highest cardinality (whose fixed cells — the bulk of the cube —
	// then spread across the most shards).
	Dim int
	// Shards bounds how many shards the relation splits into (values are
	// hashed into shards). Defaults to 4×Workers, capped by the partition
	// dimension's cardinality.
	Shards int
}

// Run computes the cube of t with eng under ecfg, distributing the work
// across cfg.Workers goroutines, and emits every cell into out. Emissions
// are serialized (out need not be goroutine-safe) but arrive in
// nondeterministic order. The emitted cell set is identical to
// eng.Run(t, ecfg, out).
func Run(t *table.Table, eng engine.Engine, ecfg engine.Config, cfg Config, out sink.Sink) error {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	nd := t.NumDims()
	if nd < 2 || t.NumTuples() == 0 {
		// Nothing to decompose on; a single sequential run is the whole job.
		return eng.Run(t, ecfg, out)
	}
	dim := cfg.Dim
	if dim < 0 {
		dim = 0
		for d := 1; d < nd; d++ {
			if t.Cards[d] > t.Cards[dim] {
				dim = d
			}
		}
	}
	if dim >= nd {
		return fmt.Errorf("parallel: dimension %d out of range", dim)
	}
	ns := cfg.Shards
	if ns <= 0 {
		ns = 4 * workers
	}
	if ns > t.Cards[dim] {
		ns = t.Cards[dim]
	}
	if ns < 1 {
		ns = 1
	}

	shards := ShardTables(t, dim, ns)
	projDims := make([]int, 0, nd-1)
	for d := 0; d < nd; d++ {
		if d != dim {
			projDims = append(projDims, d)
		}
	}
	pt, err := t.Project(projDims)
	if err != nil {
		return err
	}

	merger := sink.NewMerger(out)

	// The final pass is usually the longest job, so it goes first; shards
	// follow largest-first to keep the pool balanced under skew.
	sort.Slice(shards, func(i, j int) bool { return shards[i].NumTuples() > shards[j].NumTuples() })
	pool := NewPool(workers)
	var scan *AgreementScan
	pool.Submit(func() error {
		if ecfg.Closed {
			// Closed mode: collect the projection cube's closed candidates and
			// hand the agreement scan's chunk jobs straight back to the pool,
			// so the scan overlaps the shard jobs still running.
			col := &sink.AuxCollector{}
			if err := eng.Run(pt, ecfg, col); err != nil {
				return fmt.Errorf("parallel: final pass: %w", err)
			}
			scan = NewAgreementScan(t, dim, projDims, col.Cells, workers)
			if scan != nil {
				for _, job := range scan.Jobs() {
					pool.Submit(job)
				}
			}
			return nil
		}
		w := merger.Worker()
		ins := &starInsert{next: w, dim: dim, scratch: getValsScratch(nd)}
		if err := eng.Run(pt, ecfg, ins); err != nil {
			return fmt.Errorf("parallel: final pass: %w", err)
		}
		putValsScratch(ins.scratch)
		w.Close()
		return nil
	})
	for _, st := range shards {
		st := st
		pool.Submit(func() error {
			w := merger.Worker()
			f := &fixedFilter{next: w, dim: dim}
			if err := eng.Run(st, ecfg, f); err != nil {
				return fmt.Errorf("parallel: shard: %w", err)
			}
			w.Close()
			return nil
		})
	}
	if err := pool.Wait(); err != nil {
		return err
	}

	if scan != nil {
		w := merger.Worker()
		scan.EmitSurvivors(w)
		w.Close()
	}
	return nil
}

// ShardTables splits t into ns sub-tables on dimension dim (value % ns picks
// the shard, so every tuple sharing a dimension value lands in the same
// shard). The shards are zero-copy views: one permutation pass scatters the
// relation into a single backing arena grouped by shard, and each shard's
// columns are sub-slices of it — no per-shard table allocation, and the
// schema (Names, Cards) is shared with the parent, which engines never
// mutate. Empty shards are omitted. Shared with internal/refresh, which
// shards only the partitions a delta touched.
func ShardTables(t *table.Table, dim, ns int) []*table.Table {
	n := t.NumTuples()
	nd := t.NumDims()
	counts := make([]int, ns)
	col := t.Cols[dim]
	for tid := 0; tid < n; tid++ {
		counts[int(col[tid])%ns]++
	}
	offs := make([]int, ns+1)
	for s := 0; s < ns; s++ {
		offs[s+1] = offs[s] + counts[s]
	}
	// pos[tid] is the tuple's destination row in the permuted arena: shards
	// occupy consecutive row ranges [offs[s], offs[s+1]).
	pos := make([]int32, n)
	next := make([]int, ns)
	copy(next, offs[:ns])
	for tid := 0; tid < n; tid++ {
		s := int(col[tid]) % ns
		pos[tid] = int32(next[s])
		next[s]++
	}
	// One arena for all dimensions; every shard column is a view into it.
	arena := make([]core.Value, n*nd)
	cols := make(core.Columns, nd)
	for d := 0; d < nd; d++ {
		dst := arena[d*n : (d+1)*n]
		src := t.Cols[d]
		for tid := 0; tid < n; tid++ {
			dst[pos[tid]] = src[tid]
		}
		cols[d] = dst
	}
	var auxArena []float64
	if t.Aux != nil {
		auxArena = make([]float64, n)
		for tid := 0; tid < n; tid++ {
			auxArena[pos[tid]] = t.Aux[tid]
		}
	}
	shards := make([]*table.Table, 0, ns)
	for s := 0; s < ns; s++ {
		if counts[s] == 0 {
			continue
		}
		st := &table.Table{
			Names: t.Names,
			Cards: t.Cards,
			Cols:  make(core.Columns, nd),
		}
		for d := 0; d < nd; d++ {
			st.Cols[d] = cols[d][offs[s]:offs[s+1]]
		}
		if auxArena != nil {
			st.Aux = auxArena[offs[s]:offs[s+1]]
		}
		shards = append(shards, st)
	}
	return shards
}

// Pool is a fixed-size worker pool whose jobs may submit further jobs — the
// property the closed-mode final pass needs to overlap its agreement scan
// with still-running shard jobs. After a job fails, queued jobs are dropped
// (in-flight ones finish) and Wait returns the first error.
type Pool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []func() error
	inflight int
	closed   bool
	firstErr error
	wg       sync.WaitGroup
}

// NewPool starts workers goroutines waiting for Submit.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

// Submit enqueues a job. Safe to call from running jobs; external submissions
// must happen before Wait.
func (p *Pool) Submit(job func() error) {
	p.mu.Lock()
	p.queue = append(p.queue, job)
	p.mu.Unlock()
	p.cond.Signal()
}

// Wait marks the external submission stream closed, waits for the queue to
// drain (including jobs submitted by jobs) and returns the first job error.
func (p *Pool) Wait() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
	return p.firstErr
}

func (p *Pool) worker() {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		if len(p.queue) > 0 {
			job := p.queue[0]
			p.queue = p.queue[1:]
			if p.firstErr != nil {
				continue // drain without running after a failure
			}
			p.inflight++
			p.mu.Unlock()
			err := job()
			p.mu.Lock()
			p.inflight--
			if err != nil && p.firstErr == nil {
				p.firstErr = err
			}
			if len(p.queue) == 0 && p.inflight == 0 {
				// The pool may be idle for good: wake waiters to re-check.
				p.cond.Broadcast()
			}
			continue
		}
		if p.closed && p.inflight == 0 {
			p.mu.Unlock()
			return
		}
		p.cond.Wait()
	}
}

// RunPool executes jobs on `workers` goroutines, returning the first error.
// After a job fails no further jobs start (in-flight ones finish).
func RunPool(workers int, jobs []func() error) error {
	if workers > len(jobs) {
		workers = len(jobs)
	}
	p := NewPool(workers)
	for _, job := range jobs {
		p.Submit(job)
	}
	return p.Wait()
}

// valsScratchPool recycles the full-width value buffers of starInsert and the
// survivor widening across jobs and refreshes.
var valsScratchPool = sync.Pool{New: func() any { return new([]core.Value) }}

//ccubing:hotpath
func getValsScratch(nd int) []core.Value {
	s := *valsScratchPool.Get().(*[]core.Value)
	if cap(s) < nd {
		//ccubing:allow pool-miss growth only; steady state reuses the pooled buffer
		s = make([]core.Value, nd)
	}
	return s[:nd]
}

//ccubing:hotpath
func putValsScratch(s []core.Value) {
	valsScratchPool.Put(&s)
}

// fixedFilter keeps cells fixing the partition dimension (shard runs).
type fixedFilter struct {
	next sink.AuxSink
	dim  int
}

//ccubing:hotpath
func (f *fixedFilter) Emit(vals []core.Value, count int64) { f.EmitAux(vals, count, 0) }

//ccubing:hotpath
func (f *fixedFilter) EmitAux(vals []core.Value, count int64, aux float64) {
	if vals[f.dim] != core.Star {
		f.next.EmitAux(vals, count, aux)
	}
}

// starInsert widens projected cells back to the full dimensionality, placing
// Star at the removed partition dimension (final pass, iceberg mode).
type starInsert struct {
	next    sink.AuxSink
	dim     int
	scratch []core.Value
}

//ccubing:hotpath
func (s *starInsert) Emit(vals []core.Value, count int64) { s.EmitAux(vals, count, 0) }

//ccubing:hotpath
func (s *starInsert) EmitAux(vals []core.Value, count int64, aux float64) {
	copy(s.scratch[:s.dim], vals[:s.dim])
	s.scratch[s.dim] = core.Star
	copy(s.scratch[s.dim+1:], vals[s.dim:])
	s.next.EmitAux(s.scratch, count, aux)
}

// maskGroup indexes the closed-mode candidates of one cuboid (one pattern of
// fixed projected dimensions) for the agreement scan.
type maskGroup struct {
	dims  []int          // fixed dimensions, as original-table indices
	index map[string]int // packed fixed values -> candidate index
}

// AgreementScan is the closed-mode final-pass check, split into
// pool-schedulable chunk jobs: given the closed candidates computed on the
// relation projected without dim, it decides which stay closed once dim
// returns — a candidate all of whose tuples agree on one dim value is covered
// (with equal count) by the cell fixing that value, hence not closed. The
// decision aggregates a first-value/conflict pair per candidate over one scan
// of the relation, chunked by tuple range so the chunks run concurrently with
// other pool work.
type AgreementScan struct {
	t          *table.Table
	dim        int
	candidates []core.Cell
	groups     []*maskGroup
	chunks     int
	firsts     [][]core.Value
	conflicts  [][]bool
}

// NewAgreementScan prepares the scan over t's tuples for the given
// candidates (values in projDims order), split into at most chunks jobs.
// Returns nil when there are no candidates to check.
func NewAgreementScan(t *table.Table, dim int, projDims []int, candidates []core.Cell, chunks int) *AgreementScan {
	if len(candidates) == 0 {
		return nil
	}
	if chunks < 1 {
		chunks = 1
	}
	if n := t.NumTuples(); chunks > n {
		chunks = n
	}
	return &AgreementScan{
		t:          t,
		dim:        dim,
		candidates: candidates,
		groups:     buildMaskGroups(projDims, candidates),
		chunks:     chunks,
		firsts:     make([][]core.Value, chunks),
		conflicts:  make([][]bool, chunks),
	}
}

// Jobs returns the scan's chunk jobs, one per tuple range, each independent
// and safe to run concurrently (they write disjoint per-chunk aggregates).
func (a *AgreementScan) Jobs() []func() error {
	n := a.t.NumTuples()
	jobs := make([]func() error, a.chunks)
	for c := 0; c < a.chunks; c++ {
		c := c
		jobs[c] = func() error {
			lo, hi := c*n/a.chunks, (c+1)*n/a.chunks
			first := make([]core.Value, len(a.candidates))
			for i := range first {
				first[i] = -1
			}
			conflict := make([]bool, len(a.candidates))
			scanAgreement(a.t, a.dim, a.groups, lo, hi, first, conflict)
			a.firsts[c], a.conflicts[c] = first, conflict
			return nil
		}
	}
	return jobs
}

// EmitSurvivors merges the chunk aggregates (all Jobs must have completed)
// and emits each surviving candidate widened back to t's dimensionality with
// a wildcard at dim. The emitted value slice is scratch, valid only during
// the call, matching the sink contract.
func (a *AgreementScan) EmitSurvivors(out sink.AuxSink) {
	vals := getValsScratch(a.t.NumDims())
	defer putValsScratch(vals)
	for ci, cand := range a.candidates {
		first := core.Value(-1)
		conflict := false
		for c := 0; c < a.chunks && !conflict; c++ {
			if a.conflicts[c][ci] {
				conflict = true
			} else if v := a.firsts[c][ci]; v >= 0 {
				if first >= 0 && first != v {
					conflict = true
				}
				first = v
			}
		}
		if !conflict {
			continue // one shared value on dim covers the candidate
		}
		copy(vals[:a.dim], cand.Values[:a.dim])
		vals[a.dim] = core.Star
		copy(vals[a.dim+1:], cand.Values[a.dim:])
		out.EmitAux(vals, cand.Count, cand.Aux)
	}
}

// ClosedSurvivors finishes the closed-mode final pass over the projection
// cube in one call: it runs an AgreementScan on its own worker pool and
// returns the surviving candidates, widened back to t's dimensionality with
// a wildcard at dim. Callers that already hold a pool should use
// NewAgreementScan directly and submit its Jobs, overlapping the scan with
// their other work.
func ClosedSurvivors(t *table.Table, dim int, projDims []int, candidates []core.Cell, workers int) []core.Cell {
	scan := NewAgreementScan(t, dim, projDims, candidates, workers)
	if scan == nil {
		return nil
	}
	if err := RunPool(workers, scan.Jobs()); err != nil {
		panic(err) // unreachable: scan jobs never fail
	}
	col := &sink.AuxCollector{}
	scan.EmitSurvivors(col)
	return col.Cells
}

// buildMaskGroups groups candidates by their fixed-dimension pattern and
// indexes each group by its packed fixed values.
func buildMaskGroups(projDims []int, candidates []core.Cell) []*maskGroup {
	byMask := make(map[uint64]*maskGroup)
	var buf []byte
	for ci, cand := range candidates {
		var mask uint64
		for i, v := range cand.Values {
			if v != core.Star {
				mask |= 1 << uint(i)
			}
		}
		g := byMask[mask]
		if g == nil {
			g = &maskGroup{index: make(map[string]int)}
			for i, v := range cand.Values {
				if v != core.Star {
					g.dims = append(g.dims, projDims[i])
				}
			}
			byMask[mask] = g
		}
		buf = buf[:0]
		for _, v := range cand.Values {
			if v != core.Star {
				buf = core.AppendValue(buf, v)
			}
		}
		g.index[string(buf)] = ci
	}
	groups := make([]*maskGroup, 0, len(byMask))
	for _, g := range byMask {
		groups = append(groups, g)
	}
	return groups
}

// scanAgreement folds tuples [lo, hi) into the per-candidate aggregates.
func scanAgreement(t *table.Table, dim int, groups []*maskGroup, lo, hi int, first []core.Value, conflict []bool) {
	dimCol := t.Cols[dim]
	var buf []byte
	for _, g := range groups {
		for tid := lo; tid < hi; tid++ {
			buf = buf[:0]
			for _, d := range g.dims {
				buf = core.AppendValue(buf, t.Cols[d][tid])
			}
			ci, ok := g.index[string(buf)]
			if !ok {
				continue
			}
			if conflict[ci] {
				continue
			}
			v := dimCol[tid]
			if first[ci] < 0 {
				first[ci] = v
			} else if first[ci] != v {
				conflict[ci] = true
			}
		}
	}
}
