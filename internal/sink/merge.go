package sink

import (
	"sync"

	"ccubing/internal/core"
)

// Merger funnels cells emitted by concurrent workers into one downstream
// sink that need not be goroutine-safe. Each worker goroutine takes its own
// handle from Worker(); emissions buffer locally in the handle and flush in
// batches under the merger's lock, so the downstream sink only ever sees
// serialized calls. The parallel execution driver merges its per-worker
// outputs through this.
type Merger struct {
	mu    sync.Mutex
	next  Sink
	aux   AuxSink   // non-nil when next also accepts measure values
	batch BatchSink // non-nil when next accepts whole batches
}

// NewMerger wraps next (which may implement AuxSink to receive measure
// values, and BatchSink to receive whole flush batches in one call).
func NewMerger(next Sink) *Merger {
	m := &Merger{next: next}
	if a, ok := next.(AuxSink); ok {
		m.aux = a
	}
	if b, ok := next.(BatchSink); ok {
		m.batch = b
	}
	return m
}

// flushBatch bounds how many cells a worker buffers between flushes; large
// enough to amortize the lock, small enough to keep buffers cache-resident.
const flushBatch = 512

// workerPool recycles MergeWorker handles (and their value/cell arenas)
// across jobs and refreshes, so a steady stream of shard jobs stops paying an
// arena allocation per job. Close returns a handle here.
var workerPool = sync.Pool{New: func() any { return new(MergeWorker) }}

// Worker returns a buffered emission handle for one goroutine. Handles are
// not goroutine-safe themselves; the owner must call Flush (or Close, which
// also recycles the handle's buffers) when done — cells still buffered at
// that point would otherwise be lost.
func (m *Merger) Worker() *MergeWorker {
	w := workerPool.Get().(*MergeWorker)
	w.m = m
	return w
}

// MergeWorker is a single-goroutine Sink handle produced by Merger.Worker.
type MergeWorker struct {
	m     *Merger
	vals  []core.Value
	cells []BatchCell
}

// Emit implements Sink.
//
//ccubing:hotpath
func (w *MergeWorker) Emit(vals []core.Value, count int64) { w.EmitAux(vals, count, 0) }

// EmitAux implements AuxSink.
//
//ccubing:hotpath
func (w *MergeWorker) EmitAux(vals []core.Value, count int64, aux float64) {
	w.cells = append(w.cells, BatchCell{
		Off:   int32(len(w.vals)),
		Width: int32(len(vals)),
		Count: count,
		Aux:   aux,
	})
	w.vals = append(w.vals, vals...)
	if len(w.cells) >= flushBatch {
		w.Flush()
	}
}

// Flush drains the buffer into the downstream sink under the merger's lock:
// one EmitBatch call when the sink accepts batches, cell-by-cell otherwise.
//
//ccubing:hotpath
func (w *MergeWorker) Flush() {
	if len(w.cells) == 0 {
		return
	}
	m := w.m
	m.mu.Lock()
	switch {
	case m.batch != nil:
		m.batch.EmitBatch(w.vals, w.cells)
	case m.aux != nil:
		for _, c := range w.cells {
			m.aux.EmitAux(w.vals[c.Off:c.Off+c.Width], c.Count, c.Aux)
		}
	default:
		for _, c := range w.cells {
			m.next.Emit(w.vals[c.Off:c.Off+c.Width], c.Count)
		}
	}
	m.mu.Unlock()
	w.cells = w.cells[:0]
	w.vals = w.vals[:0]
}

// Close flushes any buffered cells and returns the handle (with its arenas)
// to the package pool for reuse. The handle must not be used afterwards.
func (w *MergeWorker) Close() {
	w.Flush()
	w.m = nil
	workerPool.Put(w)
}
