package sink

import (
	"sync"

	"ccubing/internal/core"
)

// Merger funnels cells emitted by concurrent workers into one downstream
// sink that need not be goroutine-safe. Each worker goroutine takes its own
// handle from Worker(); emissions buffer locally in the handle and flush in
// batches under the merger's lock, so the downstream sink only ever sees
// serialized calls. The parallel execution driver merges its per-worker
// outputs through this.
type Merger struct {
	mu   sync.Mutex
	next Sink
	aux  AuxSink // non-nil when next also accepts measure values
}

// NewMerger wraps next (which may implement AuxSink to receive measure
// values).
func NewMerger(next Sink) *Merger {
	m := &Merger{next: next}
	if a, ok := next.(AuxSink); ok {
		m.aux = a
	}
	return m
}

// flushBatch bounds how many cells a worker buffers between flushes; large
// enough to amortize the lock, small enough to keep buffers cache-resident.
const flushBatch = 512

// Worker returns a buffered emission handle for one goroutine. Handles are
// not goroutine-safe themselves; the owner must call Flush when done (cells
// still buffered at that point would otherwise be lost).
func (m *Merger) Worker() *MergeWorker {
	return &MergeWorker{m: m}
}

// mergedCell is one buffered emission: width values starting at off in the
// worker's value arena.
type mergedCell struct {
	off   int32
	width int32
	count int64
	aux   float64
}

// MergeWorker is a single-goroutine Sink handle produced by Merger.Worker.
type MergeWorker struct {
	m     *Merger
	vals  []core.Value
	cells []mergedCell
}

// Emit implements Sink.
func (w *MergeWorker) Emit(vals []core.Value, count int64) { w.EmitAux(vals, count, 0) }

// EmitAux implements AuxSink.
func (w *MergeWorker) EmitAux(vals []core.Value, count int64, aux float64) {
	w.cells = append(w.cells, mergedCell{
		off:   int32(len(w.vals)),
		width: int32(len(vals)),
		count: count,
		aux:   aux,
	})
	w.vals = append(w.vals, vals...)
	if len(w.cells) >= flushBatch {
		w.Flush()
	}
}

// Flush drains the buffer into the downstream sink under the merger's lock.
func (w *MergeWorker) Flush() {
	if len(w.cells) == 0 {
		return
	}
	m := w.m
	m.mu.Lock()
	for _, c := range w.cells {
		vals := w.vals[c.off : c.off+c.width]
		if m.aux != nil {
			m.aux.EmitAux(vals, c.count, c.aux)
		} else {
			m.next.Emit(vals, c.count)
		}
	}
	m.mu.Unlock()
	w.cells = w.cells[:0]
	w.vals = w.vals[:0]
}
