package sink

import "ccubing/internal/core"

// AuxSink receives cells together with a complex-measure value (paper
// Sec. 6.1). Engines that support measure plumbing type-assert their Sink to
// AuxSink and fall back to plain Emit otherwise.
type AuxSink interface {
	Sink
	EmitAux(vals []core.Value, count int64, aux float64)
}

// AuxCollector retains cells with their measure values.
type AuxCollector struct {
	Cells []core.Cell
}

// Emit implements Sink (measure value defaults to 0).
func (c *AuxCollector) Emit(vals []core.Value, count int64) {
	c.EmitAux(vals, count, 0)
}

// EmitAux implements AuxSink, copying vals.
func (c *AuxCollector) EmitAux(vals []core.Value, count int64, aux float64) {
	v := make([]core.Value, len(vals))
	copy(v, vals)
	c.Cells = append(c.Cells, core.Cell{Values: v, Count: count, Aux: aux})
}
