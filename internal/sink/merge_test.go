package sink

import (
	"sync"
	"testing"

	"ccubing/internal/core"
)

// TestMergerConcurrent drives many goroutines through one Merger and checks
// every emission reaches the downstream collector exactly once (run under
// -race to exercise the locking).
func TestMergerConcurrent(t *testing.T) {
	var col Collector
	m := NewMerger(&col)
	const workers = 8
	const perWorker = 2000 // > flushBatch to force mid-run flushes
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := m.Worker()
			vals := make([]core.Value, 3)
			for i := 0; i < perWorker; i++ {
				vals[0] = core.Value(g)
				vals[1] = core.Value(i)
				vals[2] = core.Star
				w.Emit(vals, int64(g*perWorker+i))
			}
			w.Flush()
		}(g)
	}
	wg.Wait()
	if len(col.Cells) != workers*perWorker {
		t.Fatalf("collected %d cells, want %d", len(col.Cells), workers*perWorker)
	}
	seen := make(map[int64]bool, len(col.Cells))
	for _, c := range col.Cells {
		if int64(c.Values[0])*perWorker+int64(c.Values[1]) != c.Count {
			t.Fatalf("cell %v: count %d does not match values", c.Values, c.Count)
		}
		if seen[c.Count] {
			t.Fatalf("count %d delivered twice", c.Count)
		}
		seen[c.Count] = true
	}
}

// TestMergerAux checks measure values pass through to an AuxSink downstream.
func TestMergerAux(t *testing.T) {
	var col AuxCollector
	m := NewMerger(&col)
	w := m.Worker()
	w.EmitAux([]core.Value{1, core.Star}, 5, 2.5)
	w.Emit([]core.Value{2, core.Star}, 7)
	w.Flush()
	if len(col.Cells) != 2 {
		t.Fatalf("collected %d cells, want 2", len(col.Cells))
	}
	if col.Cells[0].Aux != 2.5 || col.Cells[0].Count != 5 {
		t.Fatalf("first cell = %+v, want count 5 aux 2.5", col.Cells[0])
	}
	if col.Cells[1].Aux != 0 || col.Cells[1].Count != 7 {
		t.Fatalf("second cell = %+v, want count 7 aux 0", col.Cells[1])
	}
}

// TestMergerFlushEmpty checks Flush on an empty handle is a no-op.
func TestMergerFlushEmpty(t *testing.T) {
	var col Collector
	m := NewMerger(&col)
	m.Worker().Flush()
	if len(col.Cells) != 0 {
		t.Fatalf("collected %d cells, want 0", len(col.Cells))
	}
}
