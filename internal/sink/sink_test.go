package sink

import (
	"strings"
	"testing"

	"ccubing/internal/core"
)

func TestNullAccounting(t *testing.T) {
	var n Null
	n.Emit([]core.Value{1, core.Star}, 5)
	n.Emit([]core.Value{1, 2}, 3)
	if n.Cells != 2 {
		t.Fatalf("cells = %d", n.Cells)
	}
	// 2 cells × (2 dims × 4 bytes + 8 bytes) = 32 bytes.
	if n.Bytes != 32 {
		t.Fatalf("bytes = %d", n.Bytes)
	}
	if n.MB() != 32.0/(1<<20) {
		t.Fatalf("MB = %v", n.MB())
	}
}

func TestCollectorCopiesScratch(t *testing.T) {
	var c Collector
	scratch := []core.Value{1, 2}
	c.Emit(scratch, 7)
	scratch[0] = 99
	if c.Cells[0].Values[0] != 1 {
		t.Fatal("Collector must copy the scratch slice")
	}
	if c.Cells[0].Count != 7 {
		t.Fatalf("count = %d", c.Cells[0].Count)
	}
}

func TestCollectorByKey(t *testing.T) {
	var c Collector
	c.Emit([]core.Value{1, core.Star}, 2)
	c.Emit([]core.Value{core.Star, 1}, 3)
	m, ok := c.ByKey()
	if !ok || len(m) != 2 {
		t.Fatalf("ByKey = %v, %v", m, ok)
	}
	c.Emit([]core.Value{1, core.Star}, 2)
	if _, ok := c.ByKey(); ok {
		t.Fatal("duplicate cells must be reported")
	}
}

func TestWriter(t *testing.T) {
	var b strings.Builder
	w := &Writer{W: &b}
	w.Emit([]core.Value{3, core.Star}, 9)
	w.Emit([]core.Value{0, 1}, 2)
	if w.Err() != nil {
		t.Fatalf("Err = %v", w.Err())
	}
	want := "3,*,9\n0,1,2\n"
	if b.String() != want {
		t.Fatalf("output = %q, want %q", b.String(), want)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = &failErr{}

type failErr struct{}

func (*failErr) Error() string { return "fail" }

func TestWriterError(t *testing.T) {
	w := &Writer{W: failWriter{}}
	w.Emit([]core.Value{1}, 1)
	if w.Err() == nil {
		t.Fatal("write error must be surfaced")
	}
	w.Emit([]core.Value{2}, 2) // must not panic after error
}

func TestTee(t *testing.T) {
	var a, b Null
	tee := Tee{&a, &b}
	tee.Emit([]core.Value{1}, 1)
	if a.Cells != 1 || b.Cells != 1 {
		t.Fatalf("tee did not fan out: %d, %d", a.Cells, b.Cells)
	}
}

func TestDedup(t *testing.T) {
	var c Collector
	d := &Dedup{Next: &c}
	d.Emit([]core.Value{1}, 1)
	d.Emit([]core.Value{2}, 1)
	d.Emit([]core.Value{1}, 1)
	if d.Dup != 1 {
		t.Fatalf("dup = %d", d.Dup)
	}
	if len(c.Cells) != 3 {
		t.Fatalf("next sink got %d cells", len(c.Cells))
	}
}

func TestDiffCells(t *testing.T) {
	a := []core.Cell{{Values: []core.Value{1, core.Star}, Count: 2}}
	b := []core.Cell{{Values: []core.Value{1, core.Star}, Count: 2}}
	if d := DiffCells(a, b, 10); d != "" {
		t.Fatalf("equal sets diff = %q", d)
	}
	c := []core.Cell{{Values: []core.Value{1, core.Star}, Count: 3}}
	if d := DiffCells(a, c, 10); !strings.Contains(d, "count mismatch") {
		t.Fatalf("diff = %q", d)
	}
	e := []core.Cell{}
	if d := DiffCells(a, e, 10); !strings.Contains(d, "unexpected") {
		t.Fatalf("diff = %q", d)
	}
	if d := DiffCells(e, a, 10); !strings.Contains(d, "missing") {
		t.Fatalf("diff = %q", d)
	}
}

func TestFormatCells(t *testing.T) {
	cells := []core.Cell{
		{Values: []core.Value{1, core.Star}, Count: 2},
		{Values: []core.Value{core.Star, 0}, Count: 5},
	}
	got := FormatCells(cells)
	if !strings.Contains(got, "(a1, * : 2)") || !strings.Contains(got, "(*, b0 : 5)") {
		t.Fatalf("FormatCells = %q", got)
	}
	// Canonical order: the star-first cell sorts first.
	if strings.Index(got, "(*, b0") > strings.Index(got, "(a1, *") {
		t.Fatalf("not in canonical order: %q", got)
	}
}
