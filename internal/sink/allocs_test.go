package sink

// Steady-state allocation regression tests for the merge path: once a
// MergeWorker's batch buffers have grown to their working size, emitting and
// flushing must not allocate — the zero-copy pipeline's contract. Bounds are
// small but nonzero where a GC can empty a sync.Pool mid-measurement.

import (
	"testing"

	"ccubing/internal/core"
)

func TestMergeWorkerEmitAuxSteadyStateAllocs(t *testing.T) {
	m := NewMerger(&Null{})
	w := m.Worker()
	defer w.Close()
	vals := []core.Value{1, 2, 3, 4, 5, 6}
	// Warm past several flush cycles so vals/cells reach steady capacity.
	for i := 0; i < 4*flushBatch; i++ {
		w.EmitAux(vals, 1, 0.5)
	}
	n := testing.AllocsPerRun(2000, func() {
		w.EmitAux(vals, 1, 0.5)
	})
	if n > 0.01 {
		t.Fatalf("MergeWorker.EmitAux allocates %v per op at steady state; want 0", n)
	}
}

func TestMergerWorkerReuse(t *testing.T) {
	// Worker handles are pooled: a Close followed by a Worker must not leak
	// one merger's state into the next (cells from the closed worker were
	// flushed, buffers reset).
	m1 := NewMerger(&Null{})
	w := m1.Worker()
	w.EmitAux([]core.Value{1, 2}, 3, 0)
	w.Close()
	next := &Collector{}
	m2 := NewMerger(next)
	w2 := m2.Worker()
	w2.EmitAux([]core.Value{7, 8}, 9, 0)
	w2.Close()
	if len(next.Cells) != 1 || next.Cells[0].Count != 9 {
		t.Fatalf("pooled worker leaked state: %v", next.Cells)
	}
}
