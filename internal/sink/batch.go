package sink

import "ccubing/internal/core"

// BatchCell describes one cell inside a batch emission: Width values starting
// at Off in the batch's shared value arena, with the cell's count and
// optional measure value. Aux carries the measure's stored aggregate
// (core.MeasureAgg.Stored): the running sum for sum/avg — avg is the
// algebraic pair (Aux, Count) — and the extremum for min/max, so two
// BatchCells describing the same group-by combine exactly.
type BatchCell struct {
	Off   int32
	Width int32
	Count int64
	Aux   float64
}

// Combine folds src (a partial aggregate of the same group-by, e.g. from
// another shard) into c: counts add, and the stored measure vector merges
// under kind — distributive for sum/min/max, pairwise (sum, count) for avg.
//
//ccubing:hotpath
func (c *BatchCell) Combine(src BatchCell, kind core.MeasureKind) {
	c.Count += src.Count
	c.Aux = core.CombineStored(kind, c.Aux, src.Aux)
}

// BatchSink is the bulk-transfer fast path of the merge pipeline: a sink that
// accepts a whole flush batch in one call instead of one Emit per cell, so
// per-cell interface dispatch moves out of the merger's critical section.
// Like Emit, the arena and cells slices are only valid for the duration of
// the call; implementations that retain cells must copy.
type BatchSink interface {
	EmitBatch(arena []core.Value, cells []BatchCell)
}
