package sink

import "ccubing/internal/core"

// BatchCell describes one cell inside a batch emission: Width values starting
// at Off in the batch's shared value arena, with the cell's count and
// optional measure value.
type BatchCell struct {
	Off   int32
	Width int32
	Count int64
	Aux   float64
}

// BatchSink is the bulk-transfer fast path of the merge pipeline: a sink that
// accepts a whole flush batch in one call instead of one Emit per cell, so
// per-cell interface dispatch moves out of the merger's critical section.
// Like Emit, the arena and cells slices are only valid for the duration of
// the call; implementations that retain cells must copy.
type BatchSink interface {
	EmitBatch(arena []core.Value, cells []BatchCell)
}
