// Package sink collects or accounts for the cells a cubing engine outputs.
// Engines call Emit with a scratch value slice that is only valid during the
// call; sinks that retain cells must copy.
package sink

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"ccubing/internal/core"
)

// Sink receives output cells. vals is valid only for the duration of the
// call; count is the cell's count measure.
type Sink interface {
	Emit(vals []core.Value, count int64)
}

// Null counts cells and bytes without retaining anything: the "output
// disabled" mode of the paper's overhead experiments (Figs. 16-17), also used
// for the cube-size experiments (Figs. 13-14).
type Null struct {
	Cells int64
	// Bytes accumulates the serialized cube size: one int32 per dimension
	// plus an int64 count per cell, the accounting used for Figs. 13-14.
	Bytes int64
}

// Emit implements Sink.
func (n *Null) Emit(vals []core.Value, count int64) {
	n.Cells++
	n.Bytes += int64(4*len(vals)) + 8
}

// MB returns the accumulated size in binary megabytes.
func (n *Null) MB() float64 { return float64(n.Bytes) / (1 << 20) }

// Collector retains every emitted cell; used by tests and small computations.
type Collector struct {
	Cells []core.Cell
}

// Emit implements Sink, copying vals.
func (c *Collector) Emit(vals []core.Value, count int64) {
	v := make([]core.Value, len(vals))
	copy(v, vals)
	c.Cells = append(c.Cells, core.Cell{Values: v, Count: count})
}

// Sorted returns the collected cells in canonical order.
func (c *Collector) Sorted() []core.Cell {
	core.SortCells(c.Cells)
	return c.Cells
}

// ByKey indexes the collected cells by Cell.Key. It fails (second result
// false) if two cells share a key, which would mean an engine emitted a
// duplicate.
func (c *Collector) ByKey() (map[string]int64, bool) {
	m := make(map[string]int64, len(c.Cells))
	for _, cell := range c.Cells {
		k := cell.Key()
		if _, dup := m[k]; dup {
			return nil, false
		}
		m[k] = cell.Count
	}
	return m, true
}

// Writer streams cells as CSV-ish text rows ("v0,v1,*,v3,count"), for the
// ccube command-line tool.
type Writer struct {
	W   io.Writer
	err error
	buf []byte
}

// Emit implements Sink.
func (w *Writer) Emit(vals []core.Value, count int64) {
	if w.err != nil {
		return
	}
	b := w.buf[:0]
	for _, v := range vals {
		if v == core.Star {
			b = append(b, '*')
		} else {
			b = strconv.AppendInt(b, int64(v), 10)
		}
		b = append(b, ',')
	}
	b = strconv.AppendInt(b, count, 10)
	b = append(b, '\n')
	w.buf = b
	_, w.err = w.W.Write(b)
}

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

// Tee duplicates emissions to several sinks.
type Tee []Sink

// Emit implements Sink.
func (t Tee) Emit(vals []core.Value, count int64) {
	for _, s := range t {
		s.Emit(vals, count)
	}
}

// Dedup wraps a sink and fails loudly (via the Dup counter) when the same
// cell is emitted twice; tests use it to assert engines never duplicate.
type Dedup struct {
	Next Sink
	Seen map[string]bool
	Dup  int64
}

// Emit implements Sink.
func (d *Dedup) Emit(vals []core.Value, count int64) {
	if d.Seen == nil {
		d.Seen = make(map[string]bool)
	}
	k := core.CellKey(vals)
	if d.Seen[k] {
		d.Dup++
	}
	d.Seen[k] = true
	if d.Next != nil {
		d.Next.Emit(vals, count)
	}
}

// FormatCells renders cells one per line in canonical order; a test helper
// that keeps failure output readable.
func FormatCells(cells []core.Cell) string {
	sorted := make([]core.Cell, len(cells))
	copy(sorted, cells)
	core.SortCells(sorted)
	out := ""
	for _, c := range sorted {
		out += c.String() + "\n"
	}
	return out
}

// DiffCells compares two cell sets (order-insensitive) and describes the
// differences, up to limit lines. Empty string means equal.
func DiffCells(got, want []core.Cell, limit int) string {
	gm := map[string]int64{}
	for _, c := range got {
		gm[c.Key()] = c.Count
	}
	wm := map[string]int64{}
	wcell := map[string]core.Cell{}
	for _, c := range want {
		wm[c.Key()] = c.Count
		wcell[c.Key()] = c
	}
	var lines []string
	for _, c := range got {
		if wc, ok := wm[c.Key()]; !ok {
			lines = append(lines, "unexpected "+c.String())
		} else if wc != c.Count {
			lines = append(lines, fmt.Sprintf("count mismatch %s want %d", c.String(), wc))
		}
	}
	for k, c := range wcell {
		if _, ok := gm[k]; !ok {
			lines = append(lines, "missing "+c.String())
		}
	}
	sort.Strings(lines)
	if len(lines) > limit {
		lines = append(lines[:limit], fmt.Sprintf("... and %d more", len(lines)-limit))
	}
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
