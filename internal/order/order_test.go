package order

import (
	"testing"

	"ccubing/internal/core"
	"ccubing/internal/table"
)

func tbl(t *testing.T, rows [][]core.Value) *table.Table {
	t.Helper()
	tb, err := table.FromRows(rows)
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	return tb
}

func TestStrategyStringParse(t *testing.T) {
	for _, s := range []Strategy{Original, ByCardinality, ByEntropy} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v: got %v, %v", s, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("unknown strategy must error")
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Fatalf("unknown String = %q", Strategy(9).String())
	}
}

func TestPermutationOriginal(t *testing.T) {
	tb := tbl(t, [][]core.Value{{0, 1, 2}})
	p := Permutation(tb, Original)
	for i, d := range p {
		if i != d {
			t.Fatalf("original perm = %v", p)
		}
	}
}

func TestPermutationByCardinality(t *testing.T) {
	// dim0 has 1 distinct value, dim1 has 3, dim2 has 2.
	tb := tbl(t, [][]core.Value{{0, 0, 0}, {0, 1, 1}, {0, 2, 0}})
	p := Permutation(tb, ByCardinality)
	want := []int{1, 2, 0}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("card perm = %v, want %v", p, want)
		}
	}
}

func TestPermutationByEntropyPrefersUniform(t *testing.T) {
	// Both dims have 2 distinct values; dim1 uniform, dim0 skewed.
	tb := tbl(t, [][]core.Value{
		{0, 0}, {0, 1}, {0, 0}, {0, 1}, {0, 0}, {1, 1},
	})
	p := Permutation(tb, ByEntropy)
	if p[0] != 1 {
		t.Fatalf("entropy perm = %v, want dim 1 first", p)
	}
}

func TestApply(t *testing.T) {
	tb := tbl(t, [][]core.Value{{0, 0, 0}, {0, 1, 1}, {0, 2, 0}})
	nt, perm, err := Apply(tb, ByCardinality)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if nt.Cards[0] != 3 {
		t.Fatalf("first dim after apply should be the high-cardinality one, cards=%v", nt.Cards)
	}
	if perm[0] != 1 {
		t.Fatalf("perm = %v", perm)
	}
	// Original strategy returns the same table.
	same, _, err := Apply(tb, Original)
	if err != nil || same != tb {
		t.Fatal("Original must return the input table unchanged")
	}
}

func TestPermutationTiesAreStable(t *testing.T) {
	tb := tbl(t, [][]core.Value{{0, 0}, {1, 1}})
	p := Permutation(tb, ByCardinality)
	if p[0] != 0 || p[1] != 1 {
		t.Fatalf("tie perm = %v, want stable order", p)
	}
}
