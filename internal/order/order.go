// Package order implements the dimension-ordering strategies of paper
// Sec. 5.5 for the tree-based engines (Star-Cubing and StarArray obey the
// dimension order throughout the computation; MM-Cubing is order-free).
package order

import (
	"fmt"
	"sort"

	"ccubing/internal/stats"
	"ccubing/internal/table"
)

// Strategy selects how dimensions are ordered before cubing.
type Strategy int

const (
	// Original keeps the dataset's dimension order ("Org" in Fig. 18).
	Original Strategy = iota
	// ByCardinality orders dimensions by cardinality descending, the
	// well-known strategy ("Card" in Fig. 18).
	ByCardinality
	// ByEntropy orders dimensions by the measure E(A) = -Σ|aᵢ|·log|aᵢ|
	// descending, the paper's proposal ("Entropy" in Fig. 18). More uniform
	// dimensions come first.
	ByEntropy
)

// String names the strategy as in Fig. 18.
func (s Strategy) String() string {
	switch s {
	case Original:
		return "Org"
	case ByCardinality:
		return "Card"
	case ByEntropy:
		return "Entropy"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy maps a name (case-sensitive, as printed by String) back to a
// strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "Org", "org", "original":
		return Original, nil
	case "Card", "card", "cardinality":
		return ByCardinality, nil
	case "Entropy", "entropy":
		return ByEntropy, nil
	}
	return Original, fmt.Errorf("order: unknown strategy %q", s)
}

// Permutation returns the dimension permutation the strategy prescribes for
// the table: perm[i] is the original index of the dimension to place at
// position i. Ties break by original index, keeping runs deterministic.
func Permutation(t *table.Table, s Strategy) []int {
	nd := t.NumDims()
	perm := make([]int, nd)
	for i := range perm {
		perm[i] = i
	}
	switch s {
	case Original:
	case ByCardinality:
		// Effective (observed) cardinality descending, as BUC-family papers
		// prescribe; ties by index.
		card := make([]int, nd)
		for d := 0; d < nd; d++ {
			card[d] = stats.DistinctValues(t, d)
		}
		sort.SliceStable(perm, func(i, j int) bool { return card[perm[i]] > card[perm[j]] })
	case ByEntropy:
		e := make([]float64, nd)
		for d := 0; d < nd; d++ {
			e[d] = stats.EntropyMeasure(t, d)
		}
		sort.SliceStable(perm, func(i, j int) bool { return e[perm[i]] > e[perm[j]] })
	}
	return perm
}

// Apply reorders the table per the strategy and returns it together with the
// permutation used (new position -> original dimension), which callers need
// to map output cells back to the original dimension order.
func Apply(t *table.Table, s Strategy) (*table.Table, []int, error) {
	perm := Permutation(t, s)
	if s == Original {
		return t, perm, nil
	}
	nt, err := t.Reorder(perm)
	if err != nil {
		return nil, nil, err
	}
	return nt, perm, nil
}
