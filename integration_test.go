package ccubing

import (
	"testing"

	"ccubing/internal/refcube"
)

// TestWeatherEnginesAgree runs every closed engine over a slice of the
// weather simulator — high-cardinality, strongly dependent data — and
// demands exact agreement with the oracle and between engines. This is the
// closest integration test to the paper's real-data experiments.
func TestWeatherEnginesAgree(t *testing.T) {
	ds, err := Weather(11, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, minsup := range []int64{1, 4} {
		_, wantClosed, err := refcube.Cube(ds.t, minsup)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]Cell, len(wantClosed))
		for i, cc := range wantClosed {
			want[i] = Cell{Values: cc.Values, Count: cc.Count}
		}
		for _, alg := range []Algorithm{AlgMM, AlgStar, AlgStarArray, AlgQCDFS, AlgQCTree, AlgOBBUC} {
			cells, _, err := ComputeCollect(ds, Options{MinSup: minsup, Closed: true, Algorithm: alg})
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			if !sameCells(cells, want) {
				t.Fatalf("%v disagrees with oracle at min_sup %d (%d vs %d cells)",
					alg, minsup, len(cells), len(want))
			}
		}
	}
}

// TestWeatherPartitionedAgree: the out-of-core driver must match the direct
// computation on the weather data too.
func TestWeatherPartitionedAgree(t *testing.T) {
	ds, err := Weather(13, 600, 5)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := collect(t, ds, Options{MinSup: 3, Closed: true, Algorithm: AlgStarArray})
	var parted []Cell
	_, err = ComputePartitioned(ds,
		Options{MinSup: 3, Closed: true, Algorithm: AlgStarArray},
		PartitionOptions{Dim: 3, ExplicitDim: true, Buckets: 8, TempDir: t.TempDir()},
		func(c Cell) {
			vals := make([]int32, len(c.Values))
			copy(vals, c.Values)
			parted = append(parted, Cell{Values: vals, Count: c.Count})
		})
	if err != nil {
		t.Fatal(err)
	}
	if !sameCells(direct, parted) {
		t.Fatalf("partitioned weather run differs: %d vs %d cells", len(parted), len(direct))
	}
}

// TestEndToEndPipeline exercises the full public workflow: generate, cube,
// index, query, mine rules, attach measures.
func TestEndToEndPipeline(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{T: 500, D: 5, C: 6, Skew: 1, Dependence: 1, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	aux := make([]float64, ds.NumTuples())
	for i := range aux {
		aux[i] = float64(i % 7)
	}
	if err := ds.SetMeasure(aux); err != nil {
		t.Fatal(err)
	}

	cells, st, err := ComputeCollect(ds, Options{MinSup: 5, Closed: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells == 0 {
		t.Fatal("no cells")
	}

	ix, err := NewCubeIndex(ds, cells)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells[:min(20, len(cells))] {
		if got, ok := ix.Query(c.Values); !ok || got != c.Count {
			t.Fatalf("index query %v = %d,%v want %d", c.Values, got, ok, c.Count)
		}
	}

	rules, err := MineRules(ds, cells)
	if err != nil {
		t.Fatal(err)
	}
	_ = rules // dependence 1 usually yields rules; zero is legal

	if err := AttachMeasure(ds, cells[:min(5, len(cells))], MeasureAvg); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
