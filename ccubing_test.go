package ccubing

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"ccubing/internal/refcube"
)

// collect runs ComputeCollect and fails the test on error.
func collect(t *testing.T, ds *Dataset, opt Options) ([]Cell, Stats) {
	t.Helper()
	cells, st, err := ComputeCollect(ds, opt)
	if err != nil {
		t.Fatalf("ComputeCollect(%+v): %v", opt, err)
	}
	return cells, st
}

// cellSet canonicalizes cells for comparison.
func cellSet(cells []Cell) map[string]int64 {
	m := make(map[string]int64, len(cells))
	for _, c := range cells {
		k := ""
		for _, v := range c.Values {
			k += string(rune(v+2)) + ","
		}
		m[k] = c.Count
	}
	return m
}

func sameCells(a, b []Cell) bool {
	am, bm := cellSet(a), cellSet(b)
	if len(am) != len(bm) {
		return false
	}
	for k, v := range am {
		if bm[k] != v {
			return false
		}
	}
	return true
}

// TestPaperExample1 is Table 1 / Example 1 of the paper end to end through
// the public API, for all three C-Cubing algorithms and QC-DFS.
func TestPaperExample1(t *testing.T) {
	ds, err := NewDataset([]string{"A", "B", "C", "D"}, [][]string{
		{"a1", "b1", "c1", "d1"},
		{"a1", "b1", "c1", "d3"},
		{"a1", "b2", "c2", "d2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{AlgMM, AlgStar, AlgStarArray, AlgQCDFS, AlgQCTree, AlgOBBUC} {
		cells, st, err := ComputeCollect(ds, Options{MinSup: 2, Closed: true, Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if st.Cells != 2 || len(cells) != 2 {
			t.Fatalf("%v: got %d cells", alg, len(cells))
		}
		var rendered []string
		for _, c := range cells {
			rendered = append(rendered, ds.FormatCell(c))
		}
		sort.Strings(rendered)
		want := []string{"(a1, *, *, * : 3)", "(a1, b1, c1, * : 2)"}
		for i := range want {
			if rendered[i] != want[i] {
				t.Fatalf("%v: cells = %v, want %v", alg, rendered, want)
			}
		}
	}
}

// TestEnginesAgreeQuick is the cross-engine soundness property: on random
// datasets every closed engine agrees with the oracle and with every other
// engine, and every iceberg engine likewise.
func TestEnginesAgreeQuick(t *testing.T) {
	type cfg struct {
		Seed   int64
		D      uint8
		C      uint8
		S      uint8
		MinSup uint8
	}
	f := func(c cfg) bool {
		d := int(c.D%5) + 2        // 2..6 dims
		card := int(c.C%12) + 2    // 2..13
		skew := float64(c.S%4) / 2 // 0..1.5
		minsup := int64(c.MinSup%6) + 1
		ds, err := Synthetic(SyntheticConfig{T: 120, D: d, C: card, Skew: skew, Seed: c.Seed})
		if err != nil {
			t.Fatalf("Synthetic: %v", err)
		}
		wantIce, wantClosed, err := refcube.Cube(ds.t, minsup)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		for _, alg := range []Algorithm{AlgMM, AlgStar, AlgStarArray, AlgQCDFS} {
			cells, _, err := ComputeCollect(ds, Options{MinSup: minsup, Closed: true, Algorithm: alg})
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			if len(cells) != len(wantClosed) {
				t.Logf("%v: %d closed cells, oracle %d (seed %d d=%d c=%d s=%v m=%d)",
					alg, len(cells), len(wantClosed), c.Seed, d, card, skew, minsup)
				return false
			}
			wc := make([]Cell, len(wantClosed))
			for i, cc := range wantClosed {
				wc[i] = Cell{Values: cc.Values, Count: cc.Count}
			}
			if !sameCells(cells, wc) {
				return false
			}
		}
		for _, alg := range []Algorithm{AlgMM, AlgStar, AlgStarArray, AlgBUC} {
			cells, _, err := ComputeCollect(ds, Options{MinSup: minsup, Algorithm: alg})
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			wi := make([]Cell, len(wantIce))
			for i, cc := range wantIce {
				wi[i] = Cell{Values: cc.Values, Count: cc.Count}
			}
			if !sameCells(cells, wi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestOrderStrategiesPreserveOutput: dimension ordering must never change
// the emitted cell set (cells are remapped to original positions).
func TestOrderStrategiesPreserveOutput(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{T: 300, Cards: []int{3, 17, 2, 9}, Skew: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{AlgStar, AlgStarArray} {
		base, _ := collect(t, ds, Options{MinSup: 2, Closed: true, Algorithm: alg})
		for _, ord := range []OrderStrategy{OrderByCardinality, OrderByEntropy} {
			got, _ := collect(t, ds, Options{MinSup: 2, Closed: true, Algorithm: alg, Order: ord})
			if !sameCells(base, got) {
				t.Fatalf("%v with order %v changed the output", alg, ord)
			}
		}
	}
}

func TestAutoAlgorithmRuns(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{T: 200, D: 4, C: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cells, st, err := ComputeCollect(ds, Options{MinSup: 2, Closed: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Algorithm == AlgAuto || len(cells) == 0 {
		t.Fatalf("auto run: alg=%v cells=%d", st.Algorithm, len(cells))
	}
	if st.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
	if st.Bytes != int64(len(cells))*(4*4+8) {
		t.Fatalf("bytes = %d for %d cells", st.Bytes, len(cells))
	}
}

func TestOptionValidation(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{T: 50, D: 3, C: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ComputeCollect(ds, Options{MinSup: 1, Closed: true, Algorithm: AlgBUC}); err == nil {
		t.Fatal("closed BUC must error")
	}
	if _, _, err := ComputeCollect(ds, Options{MinSup: 1, Algorithm: AlgQCDFS}); err == nil {
		t.Fatal("non-closed QC-DFS must error")
	}
	if _, _, err := ComputeCollect(ds, Options{MinSup: 1, Algorithm: AlgMM, Measure: MeasureSum}); err == nil {
		t.Fatal("measure on MM must error")
	}
	if _, _, err := ComputeCollect(nil, Options{}); err == nil {
		t.Fatal("nil dataset must error")
	}
}

func TestMeasureThroughBUC(t *testing.T) {
	ds, err := NewDatasetFromValues([]string{"x", "y"}, [][]int32{{0, 0}, {0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SetMeasure([]float64{1, 2, 4}); err != nil {
		t.Fatal(err)
	}
	cells, _ := collect(t, ds, Options{MinSup: 1, Algorithm: AlgBUC, Measure: MeasureSum})
	for _, c := range cells {
		if c.Values[0] == Star && c.Values[1] == Star && c.Aux != 7 {
			t.Fatalf("apex sum = %v", c.Aux)
		}
	}
}

func TestReadCSVRoundTrip(t *testing.T) {
	in := "city,product\nNY,phone\nSF,phone\nNY,laptop\n"
	ds, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumDims() != 2 || ds.NumTuples() != 3 {
		t.Fatalf("shape %dx%d", ds.NumDims(), ds.NumTuples())
	}
	cells, _ := collect(t, ds, Options{MinSup: 2, Closed: true})
	found := false
	for _, c := range cells {
		if ds.FormatCell(c) == "(*, phone : 2)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing (*, phone : 2); cells: %d", len(cells))
	}
}

func TestAlgorithmStringParse(t *testing.T) {
	for _, a := range []Algorithm{AlgAuto, AlgMM, AlgStar, AlgStarArray, AlgBUC, AlgQCDFS, AlgQCTree, AlgOBBUC} {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("round trip %v: %v, %v", a, got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Fatal("unknown algorithm must error")
	}
}

func TestNewDatasetErrors(t *testing.T) {
	if _, err := NewDataset([]string{"a"}, nil); err == nil {
		t.Fatal("no rows must error")
	}
	if _, err := NewDataset([]string{"a", "b"}, [][]string{{"x"}}); err == nil {
		t.Fatal("ragged row must error")
	}
	if _, err := NewDatasetFromValues([]string{"a"}, [][]int32{{0, 1}}); err == nil {
		t.Fatal("name count mismatch must error")
	}
}

func TestDatasetAccessors(t *testing.T) {
	ds, err := NewDataset([]string{"A", "B"}, [][]string{{"x", "y"}, {"z", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Names()[1] != "B" {
		t.Fatalf("names = %v", ds.Names())
	}
	if ds.Cardinalities()[0] != 2 || ds.Cardinalities()[1] != 1 {
		t.Fatalf("cards = %v", ds.Cardinalities())
	}
	if err := ds.SetMeasure([]float64{1}); err == nil {
		t.Fatal("wrong-length measure must error")
	}
}
