package ccubing_test

import (
	"fmt"
	"sort"

	"ccubing"
)

// Example reproduces the paper's Example 1: the closed iceberg cube of
// Table 1 at min_sup 2 has exactly two cells.
func Example() {
	ds, err := ccubing.NewDataset(
		[]string{"A", "B", "C", "D"},
		[][]string{
			{"a1", "b1", "c1", "d1"},
			{"a1", "b1", "c1", "d3"},
			{"a1", "b2", "c2", "d2"},
		})
	if err != nil {
		panic(err)
	}
	cells, _, err := ccubing.ComputeCollect(ds, ccubing.Options{MinSup: 2, Closed: true})
	if err != nil {
		panic(err)
	}
	lines := make([]string, len(cells))
	for i, c := range cells {
		lines[i] = ds.FormatCell(c)
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// Output:
	// (a1, *, *, * : 3)
	// (a1, b1, c1, * : 2)
}

// ExampleMaterialize freezes the closed cube of the paper's Table 1 into a
// serving store and queries a NON-closed cell by label: its count is the
// count of its closure — the lossless-compression property.
func ExampleMaterialize() {
	ds, err := ccubing.NewDataset(
		[]string{"A", "B", "C", "D"},
		[][]string{
			{"a1", "b1", "c1", "d1"},
			{"a1", "b1", "c1", "d3"},
			{"a1", "b2", "c2", "d2"},
		})
	if err != nil {
		panic(err)
	}
	cube, err := ccubing.Materialize(ds, ccubing.Options{MinSup: 2})
	if err != nil {
		panic(err)
	}
	// (a1, b1, *, *) is not closed (its closure is (a1, b1, c1, *)), and
	// (a1, b2, *, *) is below min_sup.
	for _, labels := range [][]string{
		{"a1", "b1", "*", "*"},
		{"a1", "b2", "*", "*"},
	} {
		count, ok, err := cube.QueryLabels(labels)
		if err != nil {
			panic(err)
		}
		fmt.Println(labels, count, ok)
	}
	// Output:
	// [a1 b1 * *] 2 true
	// [a1 b2 * *] 0 false
}

// ExampleCompute_iceberg computes a plain (non-closed) iceberg cube with a
// streaming visitor, counting cells without retaining them.
func ExampleCompute_iceberg() {
	ds, err := ccubing.Synthetic(ccubing.SyntheticConfig{T: 1000, D: 4, C: 5, Skew: 1, Seed: 42})
	if err != nil {
		panic(err)
	}
	var n int
	_, err = ccubing.Compute(ds, ccubing.Options{MinSup: 50, Algorithm: ccubing.AlgBUC},
		func(c ccubing.Cell) { n++ })
	if err != nil {
		panic(err)
	}
	fmt.Println(n > 0)
	// Output:
	// true
}

// ExampleAdvise shows the algorithm advisor following the paper's Fig. 15
// structure: Star family at low min_sup, C-Cubing(MM) once iceberg pruning
// dominates.
func ExampleAdvise() {
	ds, err := ccubing.Synthetic(ccubing.SyntheticConfig{T: 2000, D: 5, C: 8, Seed: 7})
	if err != nil {
		panic(err)
	}
	fmt.Println(ccubing.Advise(ds, 1, true))
	fmt.Println(ccubing.Advise(ds, 1024, true))
	// Output:
	// CC(Star)
	// CC(MM)
}

// ExampleMineRules mines closed rules (paper Sec. 6.2) from a relation with
// a planted functional dependency.
func ExampleMineRules() {
	rows := [][]int32{}
	for i := int32(0); i < 30; i++ {
		a := i % 3
		rows = append(rows, []int32{a, i % 5, a + 3}) // dim2 = dim0 + 3
	}
	ds, err := ccubing.NewDatasetFromValues([]string{"x", "y", "z"}, rows)
	if err != nil {
		panic(err)
	}
	cells, _, err := ccubing.ComputeCollect(ds, ccubing.Options{MinSup: 1, Closed: true})
	if err != nil {
		panic(err)
	}
	rules, err := ccubing.MineRules(ds, cells)
	if err != nil {
		panic(err)
	}
	// Every mined rule holds on the data; dim0 determines dim2, so rules
	// targeting dimension 2 must exist.
	found := false
	for _, r := range rules {
		for _, d := range r.TargDims {
			if d == 2 {
				found = true
			}
		}
	}
	fmt.Println(found)
	// Output:
	// true
}
