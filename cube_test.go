package ccubing

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// cubeFuzzQueries draws random query cells over the dataset's domain, biased
// toward values that occur so hits, non-closed cells and misses all appear.
func cubeFuzzQueries(rng *rand.Rand, ds *Dataset, n int) [][]int32 {
	tb := ds.Table()
	out := make([][]int32, n)
	for i := range out {
		vals := make([]int32, tb.NumDims())
		for d := range vals {
			switch rng.Intn(3) {
			case 0:
				vals[d] = Star
			case 1:
				vals[d] = tb.Cols[d][rng.Intn(tb.NumTuples())]
			default:
				vals[d] = int32(rng.Intn(tb.Cards[d]))
			}
		}
		out[i] = vals
	}
	return out
}

// bruteCellCount counts matching tuples directly.
func bruteCellCount(ds *Dataset, vals []int32) int64 {
	tb := ds.Table()
	var n int64
	for tid := 0; tid < tb.NumTuples(); tid++ {
		ok := true
		for d, v := range vals {
			if v != Star && tb.Cols[d][tid] != v {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	return n
}

// TestCubeQueryFuzz checks Materialize + Query against recomputation: every
// iceberg cell of the plain (non-closed) cube — which includes the
// non-closed cells the store does not materialize — must resolve to its
// exact count, below-threshold and empty cells must miss, and random fuzzed
// cells must agree with direct tuple counting.
func TestCubeQueryFuzz(t *testing.T) {
	for _, minsup := range []int64{1, 4} {
		ds, err := Synthetic(SyntheticConfig{T: 900, Cards: []int{8, 7, 5, 6}, Skew: 1.1, Seed: 100 + minsup})
		if err != nil {
			t.Fatal(err)
		}
		cube, err := Materialize(ds, Options{MinSup: minsup})
		if err != nil {
			t.Fatal(err)
		}

		// Every cell of the full iceberg cube (closed or not) must answer.
		full, _, err := ComputeCollect(ds, Options{MinSup: minsup, Closed: false, Algorithm: AlgBUC})
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(full)) < cube.NumCells() {
			t.Fatalf("iceberg cube smaller than closed cube (%d < %d)", len(full), cube.NumCells())
		}
		for _, c := range full {
			got, ok := cube.Query(c.Values)
			if !ok || got != c.Count {
				t.Fatalf("minsup=%d: iceberg cell %v: Query = (%d,%v), want (%d,true)",
					minsup, c.Values, got, ok, c.Count)
			}
		}

		// Fuzzed cells against direct recomputation, misses included.
		rng := rand.New(rand.NewSource(minsup))
		for _, q := range cubeFuzzQueries(rng, ds, 3000) {
			want := bruteCellCount(ds, q)
			got, ok := cube.Query(q)
			if want >= minsup {
				if !ok || got != want {
					t.Fatalf("minsup=%d: query %v = (%d,%v), want (%d,true)", minsup, q, got, ok, want)
				}
			} else if ok {
				t.Fatalf("minsup=%d: query %v = (%d,true), want miss (true count %d)", minsup, q, got, want)
			}
		}
	}
}

// TestCubeLookupClosure pins the closure semantics: Lookup returns a stored
// closed cell covering the query with the query's count.
func TestCubeLookupClosure(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{T: 500, Cards: []int{6, 5, 4}, Skew: 0.9, Dependence: 2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	closed := map[string]bool{}
	cube.Cells(func(c Cell) bool {
		closed[fmt.Sprint(c.Values)] = true
		return true
	})
	rng := rand.New(rand.NewSource(3))
	for _, q := range cubeFuzzQueries(rng, ds, 500) {
		cell, ok := cube.Lookup(q)
		if !ok {
			continue
		}
		if !closed[fmt.Sprint(cell.Values)] {
			t.Fatalf("Lookup(%v) returned non-stored cell %v", q, cell.Values)
		}
		for d, v := range q {
			if v != Star && cell.Values[d] != v {
				t.Fatalf("closure %v does not cover query %v", cell.Values, q)
			}
		}
		if want := bruteCellCount(ds, q); cell.Count != want {
			t.Fatalf("Lookup(%v).Count = %d, want %d", q, cell.Count, want)
		}
	}
}

// TestCubeMeasure checks Materialize's measure plumbing (AttachMeasure
// post-pass) against per-cell recomputation.
func TestCubeMeasure(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{T: 400, Cards: []int{6, 5, 4}, Skew: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	aux := make([]float64, ds.NumTuples())
	for i := range aux {
		aux[i] = float64(i%13) - 4
	}
	if err := ds.SetMeasure(aux); err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{MinSup: 2, Algorithm: AlgStar, Measure: MeasureSum})
	if err != nil {
		t.Fatal(err)
	}
	if !cube.HasMeasure() {
		t.Fatal("cube should carry a measure")
	}
	tb := ds.Table()
	checked := 0
	cube.Cells(func(c Cell) bool {
		var want float64
		for tid := 0; tid < tb.NumTuples(); tid++ {
			ok := true
			for d, v := range c.Values {
				if v != Star && tb.Cols[d][tid] != v {
					ok = false
					break
				}
			}
			if ok {
				want += tb.Aux[tid]
			}
		}
		if c.Aux != want {
			t.Errorf("cell %v: aux %g, want %g", c.Values, c.Aux, want)
			return false
		}
		checked++
		return true
	})
	if checked == 0 {
		t.Fatal("no cells checked")
	}
}

// TestCubeSnapshotRoundTrip checks Save → Load → Save byte identity, and
// that the loaded cube (including dictionaries) answers the same queries.
func TestCubeSnapshotRoundTrip(t *testing.T) {
	rows := [][]string{}
	cities := []string{"amsterdam", "berlin", "cadiz"}
	products := []string{"widget", "gadget"}
	years := []string{"2023", "2024", "2025"}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 400; i++ {
		rows = append(rows, []string{
			cities[rng.Intn(len(cities))],
			products[rng.Intn(len(products))],
			years[rng.Intn(len(years))],
		})
	}
	ds, err := NewDataset([]string{"city", "product", "year"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}

	var buf1 bytes.Buffer
	if err := cube.Save(&buf1); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCube(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("snapshot not byte-identical after round trip (%d vs %d bytes)", buf1.Len(), buf2.Len())
	}
	if loaded.NumCells() != cube.NumCells() || loaded.MinSup() != cube.MinSup() ||
		loaded.Algorithm() != cube.Algorithm() || !loaded.Labeled() {
		t.Fatalf("loaded cube metadata mismatch")
	}

	// Same answers, by code and by label.
	for _, q := range cubeFuzzQueries(rng, ds, 800) {
		c1, ok1 := cube.Query(q)
		c2, ok2 := loaded.Query(q)
		if ok1 != ok2 || c1 != c2 {
			t.Fatalf("query %v: original (%d,%v), loaded (%d,%v)", q, c1, ok1, c2, ok2)
		}
	}
	for _, labels := range [][]string{
		{"amsterdam", "*", "*"},
		{"berlin", "widget", "2024"},
		{"*", "gadget", "*"},
		{"never-seen", "*", "*"},
	} {
		c1, ok1, err1 := cube.QueryLabels(labels)
		c2, ok2, err2 := loaded.QueryLabels(labels)
		if err1 != nil || err2 != nil {
			t.Fatalf("label query %v: %v / %v", labels, err1, err2)
		}
		if ok1 != ok2 || c1 != c2 {
			t.Fatalf("label query %v: original (%d,%v), loaded (%d,%v)", labels, c1, ok1, c2, ok2)
		}
		if labels[0] != "never-seen" {
			want := bruteCellCount(ds, mustParse(t, cube, labels))
			if want >= 2 && (c1 != want || !ok1) {
				t.Fatalf("label query %v: (%d,%v), want (%d,true)", labels, c1, ok1, want)
			}
		}
	}
	if _, ok, _ := loaded.QueryLabels([]string{"never-seen", "*", "*"}); ok {
		t.Fatal("unknown label must miss")
	}
	if _, _, err := loaded.QueryLabels([]string{"*"}); err == nil {
		t.Fatal("wrong-arity label query must error")
	}
}

// TestCubeSnapshotEveryByteFlip mirrors the cubestore-level flip test at the
// cube layer (header + dictionaries + store payload): every single-byte
// mutation must produce a load error, never a panic or a silently-wrong cube.
func TestCubeSnapshotEveryByteFlip(t *testing.T) {
	ds, err := NewDataset([]string{"a", "b"},
		[][]string{{"x", "p"}, {"x", "q"}, {"y", "p"}, {"y", "p"}})
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0xff
		if _, err := LoadCube(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flipped byte %d of %d accepted", i, len(raw))
		}
	}
}

func mustParse(t *testing.T, c *Cube, labels []string) []int32 {
	t.Helper()
	vals, err := c.ParseCell(labels)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

// TestCubeParseCellErrors pins the error taxonomy of label parsing.
func TestCubeParseCellErrors(t *testing.T) {
	ds, err := NewDataset([]string{"a", "b"}, [][]string{{"x", "y"}, {"x", "z"}})
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cube.ParseCell([]string{"x", "nope"}); !errors.Is(err, ErrUnknownLabel) {
		t.Fatalf("want ErrUnknownLabel, got %v", err)
	}
	coded, err := Synthetic(SyntheticConfig{T: 50, D: 2, C: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	codedCube, err := Materialize(coded, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if codedCube.Labeled() {
		t.Fatal("synthetic cube should not be labeled")
	}
	if _, err := codedCube.ParseCell([]string{"0", "1"}); err == nil {
		t.Fatal("label parse on coded cube must error")
	}
}

// TestCubeSliceAndConcurrency drives Slice and concurrent Query through the
// facade; with -race this pins the concurrency-safety claim end to end.
func TestCubeSliceAndConcurrency(t *testing.T) {
	ds, err := Synthetic(SyntheticConfig{T: 700, Cards: []int{7, 6, 5}, Skew: 1.2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Materialize(ds, Options{MinSup: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Slice on a bound first dimension: every visited cell fixes it.
	q := []int32{0, Star, Star}
	n := 0
	cube.Slice(q, func(c Cell) bool {
		if c.Values[0] != 0 {
			t.Errorf("slice cell %v escapes the slice", c.Values)
			return false
		}
		n++
		return true
	})
	if n == 0 {
		t.Fatal("empty slice on a populated sub-cube")
	}

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for _, q := range cubeFuzzQueries(rng, ds, 400) {
				want := bruteCellCount(ds, q)
				got, ok := cube.Query(q)
				if want >= 2 && (!ok || got != want) {
					t.Errorf("query %v = (%d,%v), want (%d,true)", q, got, ok, want)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}
